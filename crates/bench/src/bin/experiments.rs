//! CLI entry point for the experiment tables and the benchmark suite.
//!
//! ```text
//! experiments all                   # run the full experiment-table suite
//! experiments e01 e05               # run selected experiments
//! experiments all --csv out/        # also write one CSV per table
//! experiments scaling --threads 4   # pin the host pool width
//! experiments rounds --executor roundcompress   # one executor's trajectory
//! experiments compress              # executor head-to-head report
//! experiments bench --quick         # benchmark matrix -> BENCH_core.json
//! experiments bench --quick --scheduler pipelined   # pipelined host rounds
//! experiments bench --out B.json    # choose the output path
//! experiments bench --repeat 5      # min-of-5 wall-clock (stable timing)
//! experiments bench --quick --graph g.col       # add file workloads
//! experiments bench --tier huge     # out-of-core 1e8-edge tier (nightly)
//! experiments trace                 # Perfetto timeline -> TRACE.json (+ events JSONL)
//! experiments trace --scheduler barrier --out B.json
//! experiments chaos --quick         # seeded fault-injection sweep (CI chaos gate)
//! experiments --list                # enumerate experiments and workloads
//! ```
//!
//! Exit codes: `0` on success, `2` on any usage error (unknown
//! subcommand, unknown flag, missing flag argument).

// The exit status is this CLI's interface; everything else in the
// workspace keeps the `clippy::exit` deny.
#![allow(clippy::exit)]

use mpc_sim::RoundScheduler;
use mwvc_bench::experiments::ExpOptions;
use mwvc_bench::harness::{self, BenchSuite, ExecutorKind};
use mwvc_bench::{experiments, Table};
use std::io::Write;
use std::time::Instant;

#[derive(Default)]
struct Options {
    ids: Vec<String>,
    csv_dir: Option<String>,
    threads: Option<usize>,
    quick: bool,
    full: bool,
    out: Option<String>,
    tier: Option<String>,
    graph: Option<String>,
    repeat: Option<usize>,
    executor: Option<ExecutorKind>,
    /// Whether `--executor` appeared at all (including `both`), so the
    /// flag is rejected — never silently ignored — where inapplicable.
    executor_set: bool,
    scheduler: Option<RoundScheduler>,
    list: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opt = Options::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--csv" => {
                i += 1;
                opt.csv_dir = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage("--csv needs a directory"))
                        .clone(),
                );
            }
            "--threads" => {
                i += 1;
                let t = args
                    .get(i)
                    .unwrap_or_else(|| usage("--threads needs a count"))
                    .parse::<usize>()
                    .unwrap_or_else(|_| usage("--threads needs a positive integer"));
                if t == 0 {
                    usage("--threads needs a positive integer");
                }
                opt.threads = Some(t);
            }
            "--out" => {
                i += 1;
                opt.out = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage("--out needs a file path"))
                        .clone(),
                );
            }
            "--tier" => {
                i += 1;
                let name = args.get(i).unwrap_or_else(|| usage("--tier needs a name"));
                if name != "huge" {
                    usage(&format!(
                        "unknown tier {name:?}; the only out-of-matrix tier is \"huge\" \
                         (--quick/--full select the in-matrix tiers)"
                    ));
                }
                opt.tier = Some(name.clone());
            }
            "--graph" => {
                i += 1;
                opt.graph = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage("--graph needs a file path"))
                        .clone(),
                );
            }
            "--repeat" => {
                i += 1;
                let n = args
                    .get(i)
                    .unwrap_or_else(|| usage("--repeat needs a count"))
                    .parse::<usize>()
                    .unwrap_or_else(|_| usage("--repeat needs a positive integer"));
                if n == 0 {
                    usage("--repeat needs a positive integer");
                }
                opt.repeat = Some(n);
            }
            "--executor" => {
                i += 1;
                opt.executor_set = true;
                let name = args
                    .get(i)
                    .unwrap_or_else(|| usage("--executor needs a name"));
                if name != "both" {
                    opt.executor = Some(ExecutorKind::from_name(name).unwrap_or_else(|| {
                        let known: Vec<&str> =
                            ExecutorKind::all().iter().map(|k| k.label()).collect();
                        usage(&format!(
                            "unknown executor {name:?}; known: {known:?} or 'both'"
                        ))
                    }));
                }
            }
            "--scheduler" => {
                i += 1;
                let name = args
                    .get(i)
                    .unwrap_or_else(|| usage("--scheduler needs a mode"));
                opt.scheduler = Some(match name.as_str() {
                    "barrier" => RoundScheduler::Barrier,
                    "pipelined" => RoundScheduler::Pipelined,
                    other => usage(&format!(
                        "unknown scheduler {other:?}; known: \"barrier\", \"pipelined\""
                    )),
                });
            }
            "--quick" => opt.quick = true,
            "--full" => opt.full = true,
            "--list" => opt.list = true,
            "--help" | "-h" => help(),
            flag if flag.starts_with('-') => usage(&format!("unknown flag {flag:?}")),
            other => opt.ids.push(other.to_string()),
        }
        i += 1;
    }

    if opt.list {
        if !opt.ids.is_empty() {
            usage("--list takes no further arguments");
        }
        list();
    }

    if let Some(t) = opt.threads {
        // Pin the global pool before any parallel work builds it lazily.
        // (The `scaling` experiment sweeps its own pools regardless.)
        rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build_global()
            .expect("--threads must be set before the pool is first used");
    }

    if opt.ids.iter().any(|id| id == "bench") {
        run_bench(&opt);
        return;
    }
    if opt.ids.iter().any(|id| id == "trace") {
        run_trace(&opt);
        return;
    }
    if opt.ids.iter().any(|id| id == "chaos") {
        run_chaos(&opt);
        return;
    }
    run_tables(&opt);
}

/// `experiments chaos`: the deterministic fault-injection sweep — both
/// flagship executors under the seeded fault matrix of
/// [`mwvc_bench::chaos`], both schedulers, asserting gated-output
/// bit-identity against the fault-free baseline and typed errors for
/// unrecoverable plans. Exit 0 when the contract holds, 1 on any
/// violation (the CI chaos job also runs the suite under
/// `CHAOS_MUTATE=skip-retry` / `stale-checkpoint` and requires *that*
/// exit to be nonzero).
fn run_chaos(opt: &Options) {
    if opt.ids.len() != 1 {
        usage("'chaos' cannot be combined with other experiments");
    }
    if opt.full || opt.tier.is_some() || opt.graph.is_some() || opt.repeat.is_some() {
        usage("--full/--tier/--graph/--repeat do not apply to 'chaos'");
    }
    if opt.executor_set || opt.scheduler.is_some() || opt.out.is_some() {
        usage(
            "'chaos' always sweeps every executor and scheduler; \
             --executor/--scheduler/--out do not apply",
        );
    }
    if let Some(name) = std::env::var_os("CHAOS_MUTATE") {
        eprintln!("[chaos] CHAOS_MUTATE={name:?}: the sweep is expected to FAIL");
    }
    let start = Instant::now();
    eprintln!("[chaos] running the seeded fault matrix...");
    let report = mwvc_bench::chaos::run_chaos(opt.quick);
    emit_tables("chaos", &[report.table], &opt.csv_dir);
    eprintln!(
        "[chaos] {} faulted runs, {} failure(s) in {:.1}s",
        report.runs,
        report.failures.len(),
        start.elapsed().as_secs_f64()
    );
    if !report.failures.is_empty() {
        for f in &report.failures {
            eprintln!("[chaos] FAIL: {f}");
        }
        std::process::exit(1);
    }
}

/// `experiments trace`: run one skewed quick workload and export its
/// observability record — a Chrome Trace Event Format timeline (load the
/// file in Perfetto / `chrome://tracing`) plus the model-domain event
/// stream as JSONL next to it.
fn run_trace(opt: &Options) {
    if opt.ids.len() != 1 {
        usage("'trace' cannot be combined with other experiments");
    }
    if opt.quick || opt.full || opt.tier.is_some() || opt.graph.is_some() || opt.repeat.is_some() {
        usage("--quick/--full/--tier/--graph/--repeat do not apply to 'trace'");
    }
    let scheduler = opt.scheduler.unwrap_or(RoundScheduler::Pipelined);
    let executor = opt.executor.unwrap_or(ExecutorKind::Distributed);
    // The R-MAT/Zipf cell of the quick matrix: the most degree- and
    // weight-skewed workload, so per-machine loads differ and the
    // pipelined timeline actually shows cross-machine overlap.
    let wanted = format!("rmat-zipf-eps4-n1024-{}", executor.label());
    let mut workload = harness::workload_matrix(BenchSuite::Quick)
        .into_iter()
        .find(|w| w.id == wanted)
        .unwrap_or_else(|| {
            usage(&format!(
                "trace workload {wanted:?} missing from the matrix"
            ))
        });
    workload.scheduler = scheduler;
    let out_path = opt.out.clone().unwrap_or_else(|| "TRACE.json".into());
    let events_path = format!(
        "{}.events.jsonl",
        out_path.strip_suffix(".json").unwrap_or(&out_path)
    );
    let start = Instant::now();
    eprintln!("[trace] running {} under {scheduler:?}...", workload.id);
    let outcome = harness::run_for_trace(&workload);
    let trace = &outcome.trace;
    let doc = mwvc_bench::tracefmt::chrome_trace(trace);
    std::fs::write(&out_path, doc.render()).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    });
    std::fs::write(
        &events_path,
        mwvc_bench::tracefmt::events_jsonl(&trace.events),
    )
    .unwrap_or_else(|e| {
        eprintln!("error: cannot write {events_path}: {e}");
        std::process::exit(2);
    });
    let cp = &trace.critical_path;
    match cp.straggler() {
        Some((machine, stall)) => eprintln!(
            "[trace] straggler: machine {machine} (others stalled {stall} words on it); \
             barrier makespan {} -> pipelined {}",
            cp.barrier_makespan, cp.pipelined_makespan
        ),
        None => eprintln!("[trace] no critical-path rows recorded"),
    }
    eprintln!(
        "[trace] wrote {out_path} ({} rounds x {} machines) and {events_path} ({} events) \
         in {:.1}s",
        cp.machine_rounds.len(),
        cp.machine_rounds.first().map_or(0, Vec::len),
        trace.events.len(),
        start.elapsed().as_secs_f64()
    );
}

/// `experiments bench`: the workload matrix -> BENCH_core.json.
fn run_bench(opt: &Options) {
    if opt.ids.len() != 1 {
        usage("'bench' cannot be combined with other experiments");
    }
    if opt.quick && opt.full {
        usage("--quick and --full are mutually exclusive");
    }
    if opt.tier.is_some() {
        run_bench_huge(opt);
        return;
    }
    let suite = if opt.quick {
        BenchSuite::Quick
    } else {
        BenchSuite::Full
    };
    let out_path = opt.out.clone().unwrap_or_else(|| "BENCH_core.json".into());
    let start = Instant::now();
    eprintln!("[bench] running the {} suite...", suite.label());
    let mut matrix = harness::workload_matrix(suite);
    if let Some(path) = &opt.graph {
        matrix.extend(harness::file_workloads(path).unwrap_or_else(|e| usage(&e)));
    }
    if let Some(k) = opt.executor {
        matrix.retain(|w| w.executor == k);
        eprintln!(
            "[bench] --executor {}: {} workload(s); note the report will not \
             match a full-matrix baseline",
            k.label(),
            matrix.len()
        );
    }
    if let Some(s) = opt.scheduler {
        for w in &mut matrix {
            w.scheduler = s;
        }
        eprintln!(
            "[bench] --scheduler {s:?}: gated fields stay identical to barrier mode; \
             only wall-clock columns may differ"
        );
    }
    let repeat = opt.repeat.unwrap_or(1);
    if repeat > 1 {
        eprintln!("[bench] --repeat {repeat}: reporting min-of-{repeat} wall-clock per workload");
    }
    let (report, table) = harness::run_workloads_repeat(suite.label(), matrix, repeat);
    emit_tables("bench", &[table], &opt.csv_dir);
    std::fs::write(&out_path, report.to_json()).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    });
    eprintln!(
        "[bench] wrote {out_path} ({} workloads) in {:.1}s",
        report.workloads.len(),
        start.elapsed().as_secs_f64()
    );
}

/// `experiments bench --tier huge`: the flag-gated out-of-core tier
/// (nightly-only in CI; see `mwvc_bench::huge`). Never part of the perf
/// gate, so it ignores no flags silently — the matrix-only ones are
/// rejected.
fn run_bench_huge(opt: &Options) {
    if opt.quick || opt.full || opt.graph.is_some() || opt.executor_set || opt.scheduler.is_some() {
        usage(
            "--tier huge runs a fixed out-of-core workload; it cannot be combined with \
               --quick/--full/--graph/--executor/--scheduler",
        );
    }
    if opt.repeat.is_some() {
        usage("--repeat is not supported for --tier huge (one run is minutes long)");
    }
    let params = mwvc_bench::huge::HugeParams::from_env().unwrap_or_else(|e| usage(&e));
    let out_path = opt.out.clone().unwrap_or_else(|| "BENCH_huge.json".into());
    let start = Instant::now();
    let (report, table) = mwvc_bench::huge::run_huge(&params).unwrap_or_else(|e| {
        eprintln!("error: huge tier failed: {e}");
        std::process::exit(2);
    });
    emit_tables("bench-huge", &[table], &opt.csv_dir);
    std::fs::write(&out_path, report.to_json()).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    });
    eprintln!(
        "[bench] wrote {out_path} (huge tier) in {:.1}s",
        start.elapsed().as_secs_f64()
    );
}

/// Classic experiment tables (`e01`..`e13`, `scaling`, `rounds`,
/// `compress`, `all`).
fn run_tables(opt: &Options) {
    if opt.quick
        || opt.full
        || opt.out.is_some()
        || opt.tier.is_some()
        || opt.graph.is_some()
        || opt.repeat.is_some()
        || opt.scheduler.is_some()
    {
        usage(
            "--quick/--full/--out/--tier/--graph/--repeat/--scheduler apply to the 'bench' \
             subcommand only",
        );
    }
    if opt.ids.is_empty() {
        usage("no experiments selected");
    }
    let registry = experiments::all();
    let known: Vec<&str> = registry.iter().map(|(id, _)| *id).collect();
    // Validate every requested id — including alongside "all" — so a typo
    // can never silently succeed.
    for id in &opt.ids {
        if id != "all" && !known.contains(&id.as_str()) {
            usage(&format!(
                "unknown experiment {id:?}; known: {known:?}, 'all', 'bench', 'trace', or 'chaos'"
            ));
        }
    }
    let run_all = opt.ids.iter().any(|i| i == "all");
    let selected: Vec<_> = registry
        .into_iter()
        .filter(|(id, _)| run_all || opt.ids.iter().any(|want| want == id))
        .collect();

    // `--executor` only steers executor-selectable experiments; reject it
    // elsewhere rather than silently ignoring it (mirrors --graph).
    if opt.executor_set && !opt.ids.iter().any(|id| id == "rounds" || id == "all") {
        usage("--executor applies to the 'rounds' and 'bench' subcommands only");
    }
    let exp_opts = ExpOptions {
        executor: opt.executor,
    };
    for (id, run) in selected {
        let start = Instant::now();
        eprintln!("[{id}] running...");
        let tables = run(&exp_opts);
        emit_tables(id, &tables, &opt.csv_dir);
        eprintln!("[{id}] done in {:.1}s", start.elapsed().as_secs_f64());
        let _ = std::io::stdout().flush();
    }
}

fn emit_tables(id: &str, tables: &[Table], csv_dir: &Option<String>) {
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(dir).expect("create csv output directory");
    }
    for (k, table) in tables.iter().enumerate() {
        print!("{}", table.render());
        if let Some(dir) = csv_dir {
            let path = format!("{dir}/{id}_{k}.csv");
            std::fs::write(&path, table.to_csv()).expect("write csv");
            eprintln!("[{id}] wrote {path}");
        }
    }
}

/// `--list`: experiments and benchmark workloads, one per line.
fn list() -> ! {
    println!("experiments:");
    for (id, _) in experiments::all() {
        println!("  {id}");
    }
    println!("  bench");
    println!("  trace");
    println!("  chaos");
    for suite in [BenchSuite::Quick, BenchSuite::Full] {
        println!("bench workloads ({}):", suite.label());
        for w in harness::workload_matrix(suite) {
            println!("  {}", w.id);
        }
    }
    std::process::exit(0);
}

fn help() -> ! {
    print_usage();
    std::process::exit(0);
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    print_usage();
    std::process::exit(2);
}

fn print_usage() {
    eprintln!(
        "usage: experiments <e01..e13 | scaling | rounds | compress | all>... \
         [--csv DIR] [--threads N] [--executor NAME|both]"
    );
    eprintln!(
        "       experiments bench [--quick | --full] [--out PATH] [--threads N] \
         [--executor NAME|both] [--scheduler barrier|pipelined] [--graph FILE] [--repeat N]"
    );
    eprintln!(
        "       experiments bench --tier huge [--out PATH]   # out-of-core 1e8-edge run \
         (nightly; HUGE_* env overrides)"
    );
    eprintln!(
        "       experiments trace [--scheduler barrier|pipelined] [--executor NAME] \
         [--out PATH]   # Chrome trace + events JSONL"
    );
    eprintln!(
        "       experiments chaos [--quick] [--csv DIR] [--threads N]   # seeded \
         fault-injection sweep"
    );
    eprintln!("       experiments --list");
}
