//! The `BENCH_core.json` schema: the repo's canonical, versioned record
//! of model costs and solution quality per benchmark workload.
//!
//! Stability contract (pinned by the golden-file test in
//! `tests/bench_gate.rs`):
//!
//! * field **names** and **ordering** are part of the schema — changing
//!   either requires bumping [`SCHEMA_VERSION`],
//! * everything under `"model"` and `"quality"` is deterministic given
//!   the workload definition: independent of host thread count, wall
//!   clock, and machine. These are the fields `bench-diff` gates on,
//! * `"wall_clock_s"` is informational only and never gated by default.

use crate::json::Json;

/// Version of the `BENCH_core.json` layout. Bump when renaming,
/// removing, reordering, or changing the meaning of any field.
///
/// v2: the workload matrix gained the executor axis — every row carries
/// an `"executor"` name and workload ids end in `-{executor}`.
///
/// v3: rows carry the deterministic critical-path statistics
/// (`"critical_path"`) and the ungated per-round host wall-clock
/// (`"round_wall_s"`).
///
/// v4: `"model"` gained `"spill_words"` — words written to per-machine
/// spill files under an enforced memory budget (0 for fully resident
/// runs). Gated like every other model field.
///
/// v5: `"critical_path"` gained the deterministic straggler breakdown
/// (`"straggler_machine"`, `"straggler_stall_words"`: the machine every
/// other machine waits for, named from the per-machine stall rows), and
/// rows may carry an optional, ungated `"host_breakdown"` object — the
/// informational route/compute/spill host wall-clock split. Pre-v5
/// reports default the stragglers to `-1`/`0` and the breakdown to
/// absent.
///
/// v6: `"model"` gained `"checkpoint_words"` and `"replayed_rounds"` —
/// the recovery-side accounting of the fault-injection layer (words
/// written to crash-recovery checkpoints; rounds re-executed from one).
/// Both are 0 for every fault-free run, so pre-v6 reports default them
/// to 0 and every pre-existing gated field is byte-identical to v5.
pub const SCHEMA_VERSION: i64 = 6;

/// Model-side costs of one workload run: exactly what the paper's MPC
/// model charges for, as measured by the audited distributed executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelCosts {
    /// Compression phases executed.
    pub phases: i64,
    /// MPC communication rounds (trace-measured).
    pub mpc_rounds: i64,
    /// Machines in the executing cluster.
    pub machines: i64,
    /// Per-machine word budget `S`.
    pub memory_cap_words: i64,
    /// Total words moved across the network.
    pub total_message_words: i64,
    /// Largest per-machine per-round communication.
    pub peak_round_words: i64,
    /// Largest per-machine resident memory in any round.
    pub peak_resident_words: i64,
    /// Words written to per-machine spill files over the run (nonzero
    /// only when an enforced memory budget forced the working set out of
    /// core).
    pub spill_words: i64,
    /// Words written to crash-recovery checkpoints (nonzero only under
    /// fault injection; charged separately from `spill_words` so fault-
    /// free and faulty-but-recovered runs stay bit-identical).
    pub checkpoint_words: i64,
    /// Rounds re-executed from a checkpoint after injected crashes.
    pub replayed_rounds: i64,
    /// Model-constraint breaches (must be 0 under strict enforcement).
    pub violations: i64,
}

/// Solution quality of one workload run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quality {
    /// Weight of the produced cover.
    pub cover_weight: f64,
    /// Number of vertices in the cover.
    pub cover_size: i64,
    /// A-posteriori ratio certified by the dual certificate.
    pub certified_ratio: f64,
    /// Exact LP relaxation optimum (`LP* ≤ OPT`).
    pub lp_bound: f64,
    /// `cover_weight / lp_bound` (an upper bound on the true ratio).
    pub ratio_vs_lp: f64,
    /// Weight of the greedy baseline cover on the same instance.
    pub greedy_weight: f64,
    /// Weight of the Bar-Yehuda–Even baseline cover.
    pub bye_weight: f64,
}

/// Deterministic critical-path statistics of the audited run (the
/// simulated-compute makespans of `mpc_sim`'s `CriticalPath`): what the
/// round schedule would cost under the barrier scheduler vs the
/// pipelined one, plus the barrier's total stall. Identical in both
/// scheduler modes — the tracker computes both on every run — and a pure
/// function of the workload, but they measure the host execution engine
/// rather than the paper's cost model, so `bench-diff` treats them like
/// wall-clock: reported, gated only on explicit tolerance opt-in
/// (`--cp-tolerance`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CriticalPathStats {
    /// Makespan with every round globally barriered.
    pub barrier_makespan: i64,
    /// Makespan with machines released per dependency readiness.
    pub pipelined_makespan: i64,
    /// Total idle cost machines spend waiting at barriers.
    pub barrier_stall: i64,
    /// The machine the others wait for: smallest total stall over the
    /// run, ties to the lower id (`-1` when the run carried no
    /// per-machine rows, e.g. a pre-v5 report or the reference executor).
    pub straggler_machine: i64,
    /// The straggler's total stall (words of barrier idle it *caused* is
    /// everyone else's; its own is this, the minimum).
    pub straggler_stall_words: i64,
}

impl CriticalPathStats {
    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("barrier_makespan".into(), Json::Int(self.barrier_makespan)),
            (
                "pipelined_makespan".into(),
                Json::Int(self.pipelined_makespan),
            ),
            ("barrier_stall".into(), Json::Int(self.barrier_stall)),
            (
                "straggler_machine".into(),
                Json::Int(self.straggler_machine),
            ),
            (
                "straggler_stall_words".into(),
                Json::Int(self.straggler_stall_words),
            ),
        ])
    }

    /// Field names in schema order (the `bench-diff` comparator iterates
    /// these).
    pub const FIELDS: &'static [&'static str] = &[
        "barrier_makespan",
        "pipelined_makespan",
        "barrier_stall",
        "straggler_machine",
        "straggler_stall_words",
    ];

    /// Typed field access for the comparator.
    pub fn field(&self, name: &str) -> i64 {
        match name {
            "barrier_makespan" => self.barrier_makespan,
            "pipelined_makespan" => self.pipelined_makespan,
            "barrier_stall" => self.barrier_stall,
            "straggler_machine" => self.straggler_machine,
            "straggler_stall_words" => self.straggler_stall_words,
            other => unreachable!("unknown critical-path field {other}"),
        }
    }

    fn from_json(j: &Json, ctx: &str, schema_version: i64) -> Result<Self, String> {
        // v4 reports predate the straggler breakdown; default it so the
        // report still parses and the schema_version mismatch stays
        // bench-diff's finding.
        let (straggler_machine, straggler_stall_words) = if schema_version < 5 {
            (
                req_int(j, "straggler_machine", ctx).unwrap_or(-1),
                req_int(j, "straggler_stall_words", ctx).unwrap_or(0),
            )
        } else {
            (
                req_int(j, "straggler_machine", ctx)?,
                req_int(j, "straggler_stall_words", ctx)?,
            )
        };
        Ok(CriticalPathStats {
            barrier_makespan: req_int(j, "barrier_makespan", ctx)?,
            pipelined_makespan: req_int(j, "pipelined_makespan", ctx)?,
            barrier_stall: req_int(j, "barrier_stall", ctx)?,
            straggler_machine,
            straggler_stall_words,
        })
    }
}

/// The informational host wall-clock split of one workload run, summed
/// over rounds: where the simulator's host time actually went. Never
/// deterministic, never gated — the model-side twin of these quantities
/// lives in `critical_path` and the trace events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostBreakdown {
    /// Seconds spent routing (layout + placement; under the pipelined
    /// scheduler this includes the overlapped compute).
    pub route_s: f64,
    /// Seconds spent in non-overlapped machine compute sweeps.
    pub compute_s: f64,
    /// Seconds spent on spill-file I/O.
    pub spill_s: f64,
}

impl HostBreakdown {
    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("route_s".into(), Json::Num(self.route_s)),
            ("compute_s".into(), Json::Num(self.compute_s)),
            ("spill_s".into(), Json::Num(self.spill_s)),
        ])
    }

    fn from_json(j: &Json, ctx: &str) -> Result<Self, String> {
        Ok(HostBreakdown {
            route_s: req_num(j, "route_s", ctx)?,
            compute_s: req_num(j, "compute_s", ctx)?,
            spill_s: req_num(j, "spill_s", ctx)?,
        })
    }
}

/// One workload row of the benchmark report.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadReport {
    /// Stable workload id, e.g. `gnm-zipf-eps16-n1024-distributed`.
    pub id: String,
    /// Executor that ran the workload (an
    /// [`mwvc_core::mpc::Executor::name`]).
    pub executor: String,
    /// Generator family (a [`mwvc_graph::GraphPreset::family`] name).
    pub family: String,
    /// Weight-model label.
    pub weights: String,
    /// Accuracy parameter of the run.
    pub epsilon: f64,
    /// Vertices of the built instance.
    pub n: i64,
    /// Edges of the built instance.
    pub m: i64,
    /// Gated: model costs.
    pub model: ModelCosts,
    /// Gated: solution quality.
    pub quality: Quality,
    /// Tolerance-gated like wall-clock: deterministic simulated makespans
    /// of the round schedule under both schedulers.
    pub critical_path: CriticalPathStats,
    /// Not gated: host wall-clock of the pipeline run, seconds.
    pub wall_clock_s: f64,
    /// Not gated: host wall-clock per MPC round, seconds, in execution
    /// order (host- and scheduler-dependent).
    pub round_wall_s: Vec<f64>,
    /// Not gated, optional: where host wall-clock went (route vs compute
    /// vs spill), summed over rounds. Absent for executors that run
    /// through no audited cluster and in pre-v5 reports.
    pub host_breakdown: Option<HostBreakdown>,
}

/// The full benchmark report (`BENCH_core.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Layout version ([`SCHEMA_VERSION`]).
    pub schema_version: i64,
    /// Suite label (`"quick"` or `"full"`).
    pub suite: String,
    /// Base seed of the workload matrix.
    pub seed: i64,
    /// Host threads at generation time (informational).
    pub hardware_threads: i64,
    /// One row per workload, in matrix order.
    pub workloads: Vec<WorkloadReport>,
}

impl ModelCosts {
    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("phases".into(), Json::Int(self.phases)),
            ("mpc_rounds".into(), Json::Int(self.mpc_rounds)),
            ("machines".into(), Json::Int(self.machines)),
            ("memory_cap_words".into(), Json::Int(self.memory_cap_words)),
            (
                "total_message_words".into(),
                Json::Int(self.total_message_words),
            ),
            ("peak_round_words".into(), Json::Int(self.peak_round_words)),
            (
                "peak_resident_words".into(),
                Json::Int(self.peak_resident_words),
            ),
            ("spill_words".into(), Json::Int(self.spill_words)),
            ("checkpoint_words".into(), Json::Int(self.checkpoint_words)),
            ("replayed_rounds".into(), Json::Int(self.replayed_rounds)),
            ("violations".into(), Json::Int(self.violations)),
        ])
    }

    /// Field names in schema order (the `bench-diff` gate iterates these).
    pub const FIELDS: &'static [&'static str] = &[
        "phases",
        "mpc_rounds",
        "machines",
        "memory_cap_words",
        "total_message_words",
        "peak_round_words",
        "peak_resident_words",
        "spill_words",
        "checkpoint_words",
        "replayed_rounds",
        "violations",
    ];

    fn get(&self, field: &str) -> i64 {
        match field {
            "phases" => self.phases,
            "mpc_rounds" => self.mpc_rounds,
            "machines" => self.machines,
            "memory_cap_words" => self.memory_cap_words,
            "total_message_words" => self.total_message_words,
            "peak_round_words" => self.peak_round_words,
            "peak_resident_words" => self.peak_resident_words,
            "spill_words" => self.spill_words,
            "checkpoint_words" => self.checkpoint_words,
            "replayed_rounds" => self.replayed_rounds,
            "violations" => self.violations,
            other => unreachable!("unknown model field {other}"),
        }
    }

    /// Typed field access for the comparator.
    pub fn field(&self, name: &str) -> i64 {
        self.get(name)
    }

    fn from_json(j: &Json, ctx: &str, schema_version: i64) -> Result<Self, String> {
        // v3 reports predate spill accounting; every pre-v4 run was fully
        // resident, so 0 is the faithful value — and the schema_version
        // mismatch stays bench-diff's finding, not a parse error.
        let spill_words = if schema_version < 4 {
            req_int(j, "spill_words", ctx).unwrap_or(0)
        } else {
            req_int(j, "spill_words", ctx)?
        };
        // v5 reports predate fault injection; every such run was
        // fault-free, so 0 is the faithful value for both fields.
        let (checkpoint_words, replayed_rounds) = if schema_version < 6 {
            (
                req_int(j, "checkpoint_words", ctx).unwrap_or(0),
                req_int(j, "replayed_rounds", ctx).unwrap_or(0),
            )
        } else {
            (
                req_int(j, "checkpoint_words", ctx)?,
                req_int(j, "replayed_rounds", ctx)?,
            )
        };
        Ok(ModelCosts {
            phases: req_int(j, "phases", ctx)?,
            mpc_rounds: req_int(j, "mpc_rounds", ctx)?,
            machines: req_int(j, "machines", ctx)?,
            memory_cap_words: req_int(j, "memory_cap_words", ctx)?,
            total_message_words: req_int(j, "total_message_words", ctx)?,
            peak_round_words: req_int(j, "peak_round_words", ctx)?,
            peak_resident_words: req_int(j, "peak_resident_words", ctx)?,
            spill_words,
            checkpoint_words,
            replayed_rounds,
            violations: req_int(j, "violations", ctx)?,
        })
    }
}

impl Quality {
    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("cover_weight".into(), Json::Num(self.cover_weight)),
            ("cover_size".into(), Json::Int(self.cover_size)),
            ("certified_ratio".into(), Json::Num(self.certified_ratio)),
            ("lp_bound".into(), Json::Num(self.lp_bound)),
            ("ratio_vs_lp".into(), Json::Num(self.ratio_vs_lp)),
            ("greedy_weight".into(), Json::Num(self.greedy_weight)),
            ("bye_weight".into(), Json::Num(self.bye_weight)),
        ])
    }

    /// Field names in schema order (the `bench-diff` gate iterates these).
    pub const FIELDS: &'static [&'static str] = &[
        "cover_weight",
        "cover_size",
        "certified_ratio",
        "lp_bound",
        "ratio_vs_lp",
        "greedy_weight",
        "bye_weight",
    ];

    /// Typed field access for the comparator (`cover_size` widens to f64,
    /// which is exact for any realistic cover).
    pub fn field(&self, name: &str) -> f64 {
        match name {
            "cover_weight" => self.cover_weight,
            "cover_size" => self.cover_size as f64,
            "certified_ratio" => self.certified_ratio,
            "lp_bound" => self.lp_bound,
            "ratio_vs_lp" => self.ratio_vs_lp,
            "greedy_weight" => self.greedy_weight,
            "bye_weight" => self.bye_weight,
            other => unreachable!("unknown quality field {other}"),
        }
    }

    fn from_json(j: &Json, ctx: &str) -> Result<Self, String> {
        Ok(Quality {
            cover_weight: req_num(j, "cover_weight", ctx)?,
            cover_size: req_int(j, "cover_size", ctx)?,
            certified_ratio: req_num(j, "certified_ratio", ctx)?,
            lp_bound: req_num(j, "lp_bound", ctx)?,
            ratio_vs_lp: req_num(j, "ratio_vs_lp", ctx)?,
            greedy_weight: req_num(j, "greedy_weight", ctx)?,
            bye_weight: req_num(j, "bye_weight", ctx)?,
        })
    }
}

impl WorkloadReport {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id".into(), Json::Str(self.id.clone())),
            ("executor".into(), Json::Str(self.executor.clone())),
            ("family".into(), Json::Str(self.family.clone())),
            ("weights".into(), Json::Str(self.weights.clone())),
            ("epsilon".into(), Json::Num(self.epsilon)),
            ("n".into(), Json::Int(self.n)),
            ("m".into(), Json::Int(self.m)),
            ("model".into(), self.model.to_json()),
            ("quality".into(), self.quality.to_json()),
            ("critical_path".into(), self.critical_path.to_json()),
            ("wall_clock_s".into(), Json::Num(self.wall_clock_s)),
            (
                "round_wall_s".into(),
                Json::Arr(self.round_wall_s.iter().map(|&s| Json::Num(s)).collect()),
            ),
        ];
        if let Some(hb) = self.host_breakdown {
            fields.push(("host_breakdown".into(), hb.to_json()));
        }
        Json::Obj(fields)
    }

    fn from_json(j: &Json, schema_version: i64) -> Result<Self, String> {
        let id = req_str(j, "id", "workload")?;
        let ctx = format!("workload {id}");
        // v1 reports predate the executor axis; default the single
        // executor of that era so the report still parses and the
        // schema_version mismatch surfaces as a bench-diff finding (with
        // regenerate guidance) instead of a parse error.
        let executor = if schema_version < 2 {
            req_str(j, "executor", &ctx).unwrap_or_else(|_| "distributed".into())
        } else {
            req_str(j, "executor", &ctx)?
        };
        // v2 reports predate the critical-path statistics and the
        // per-round wall-clock; default them so the report still parses
        // and the schema_version mismatch stays bench-diff's finding.
        let critical_path = if schema_version < 3 {
            j.get("critical_path")
                .map(|c| CriticalPathStats::from_json(c, &ctx, schema_version))
                .transpose()?
                .unwrap_or(CriticalPathStats {
                    barrier_makespan: 0,
                    pipelined_makespan: 0,
                    barrier_stall: 0,
                    straggler_machine: -1,
                    straggler_stall_words: 0,
                })
        } else {
            CriticalPathStats::from_json(
                j.get("critical_path")
                    .ok_or(format!("{ctx}: missing critical_path"))?,
                &ctx,
                schema_version,
            )?
        };
        // Optional at every version: informational, and executors without
        // an audited cluster have nothing to report.
        let host_breakdown = j
            .get("host_breakdown")
            .map(|h| HostBreakdown::from_json(h, &ctx))
            .transpose()?;
        let round_wall_s = match j.get("round_wall_s") {
            Some(arr) => arr
                .as_arr()
                .ok_or(format!("{ctx}: round_wall_s is not an array"))?
                .iter()
                .map(|v| {
                    v.as_f64()
                        .ok_or(format!("{ctx}: non-numeric round_wall_s entry"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            None if schema_version < 3 => Vec::new(),
            None => return Err(format!("{ctx}: missing round_wall_s")),
        };
        Ok(WorkloadReport {
            executor,
            family: req_str(j, "family", &ctx)?,
            weights: req_str(j, "weights", &ctx)?,
            epsilon: req_num(j, "epsilon", &ctx)?,
            n: req_int(j, "n", &ctx)?,
            m: req_int(j, "m", &ctx)?,
            model: ModelCosts::from_json(
                j.get("model").ok_or(format!("{ctx}: missing model"))?,
                &ctx,
                schema_version,
            )?,
            quality: Quality::from_json(
                j.get("quality").ok_or(format!("{ctx}: missing quality"))?,
                &ctx,
            )?,
            critical_path,
            wall_clock_s: req_num(j, "wall_clock_s", &ctx)?,
            round_wall_s,
            host_breakdown,
            id,
        })
    }
}

impl BenchReport {
    /// Serializes the report in its canonical byte form.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("schema_version".into(), Json::Int(self.schema_version)),
            ("suite".into(), Json::Str(self.suite.clone())),
            ("seed".into(), Json::Int(self.seed)),
            ("hardware_threads".into(), Json::Int(self.hardware_threads)),
            (
                "workloads".into(),
                Json::Arr(self.workloads.iter().map(|w| w.to_json()).collect()),
            ),
        ])
        .render()
    }

    /// Parses a report, validating the presence and types of every field.
    /// A `schema_version` ahead of this binary's is rejected here; an
    /// older one is surfaced by `bench-diff` as a gate failure instead.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let j = Json::parse(text)?;
        let schema_version = req_int(&j, "schema_version", "report")?;
        if schema_version > SCHEMA_VERSION {
            return Err(format!(
                "report schema_version {schema_version} is newer than this binary's \
                 {SCHEMA_VERSION}; rebuild the tools"
            ));
        }
        let workloads = j
            .get("workloads")
            .and_then(Json::as_arr)
            .ok_or("report: missing workloads array")?
            .iter()
            .map(|w| WorkloadReport::from_json(w, schema_version))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchReport {
            schema_version,
            suite: req_str(&j, "suite", "report")?,
            seed: req_int(&j, "seed", "report")?,
            hardware_threads: req_int(&j, "hardware_threads", "report")?,
            workloads,
        })
    }
}

fn req_int(j: &Json, key: &str, ctx: &str) -> Result<i64, String> {
    j.get(key)
        .and_then(Json::as_i64)
        .ok_or(format!("{ctx}: missing or non-integer field {key:?}"))
}

fn req_num(j: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    j.get(key)
        .and_then(Json::as_f64)
        .ok_or(format!("{ctx}: missing or non-numeric field {key:?}"))
}

fn req_str(j: &Json, key: &str, ctx: &str) -> Result<String, String> {
    j.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or(format!("{ctx}: missing or non-string field {key:?}"))
}

/// A fully populated synthetic report with tiny round numbers — shared by
/// the golden-file schema test and the `bench-diff` regression tests, so
/// the pinned bytes never depend on an actual pipeline run.
pub fn synthetic_report() -> BenchReport {
    BenchReport {
        schema_version: SCHEMA_VERSION,
        suite: "synthetic".into(),
        seed: 42,
        hardware_threads: 1,
        workloads: vec![
            WorkloadReport {
                id: "gnm-uniform-eps4-n64-distributed".into(),
                executor: "distributed".into(),
                family: "gnm".into(),
                weights: "uniform".into(),
                epsilon: 0.25,
                n: 64,
                m: 512,
                model: ModelCosts {
                    phases: 2,
                    mpc_rounds: 24,
                    machines: 8,
                    memory_cap_words: 4096,
                    total_message_words: 9000,
                    peak_round_words: 700,
                    peak_resident_words: 3000,
                    spill_words: 0,
                    checkpoint_words: 0,
                    replayed_rounds: 0,
                    violations: 0,
                },
                quality: Quality {
                    cover_weight: 130.5,
                    cover_size: 40,
                    certified_ratio: 2.25,
                    lp_bound: 61.75,
                    ratio_vs_lp: 2.113360323886639,
                    greedy_weight: 140.25,
                    bye_weight: 151.0,
                },
                critical_path: CriticalPathStats {
                    barrier_makespan: 203,
                    pipelined_makespan: 202,
                    barrier_stall: 150,
                    straggler_machine: 3,
                    straggler_stall_words: 12,
                },
                wall_clock_s: 0.015625,
                round_wall_s: vec![0.0078125, 0.00390625],
                host_breakdown: Some(HostBreakdown {
                    route_s: 0.0078125,
                    compute_s: 0.00390625,
                    spill_s: 0.001953125,
                }),
            },
            WorkloadReport {
                id: "rmat-zipf-eps16-n64-roundcompress".into(),
                executor: "roundcompress".into(),
                family: "rmat".into(),
                weights: "zipf".into(),
                epsilon: 0.0625,
                n: 60,
                m: 480,
                model: ModelCosts {
                    phases: 3,
                    mpc_rounds: 33,
                    machines: 8,
                    memory_cap_words: 4096,
                    total_message_words: 12000,
                    peak_round_words: 800,
                    peak_resident_words: 3500,
                    spill_words: 256,
                    checkpoint_words: 1024,
                    replayed_rounds: 2,
                    violations: 0,
                },
                quality: Quality {
                    cover_weight: 95.125,
                    cover_size: 33,
                    certified_ratio: 2.0625,
                    lp_bound: 47.5,
                    ratio_vs_lp: 2.0026315789473683,
                    greedy_weight: 99.0,
                    bye_weight: 101.5,
                },
                critical_path: CriticalPathStats {
                    barrier_makespan: 90,
                    pipelined_makespan: 90,
                    barrier_stall: 0,
                    straggler_machine: 0,
                    straggler_stall_words: 0,
                },
                wall_clock_s: 0.03125,
                round_wall_s: vec![0.015625],
                host_breakdown: None,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_exactly() {
        let report = synthetic_report();
        let text = report.to_json();
        let back = BenchReport::from_json(&text).expect("parse own serialization");
        assert_eq!(report, back);
        // And the canonical bytes are stable across the round-trip.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn field_lists_match_serialization_order() {
        let w = &synthetic_report().workloads[0];
        let text = w.model.to_json().render();
        let mut last = 0;
        for f in ModelCosts::FIELDS {
            let at = text.find(&format!("\"{f}\"")).expect(f);
            assert!(at > last, "model field {f} out of order");
            last = at;
            let _ = w.model.field(f); // every listed field is accessible
        }
        let text = w.quality.to_json().render();
        let mut last = 0;
        for f in Quality::FIELDS {
            let at = text.find(&format!("\"{f}\"")).expect(f);
            assert!(at > last, "quality field {f} out of order");
            last = at;
            let _ = w.quality.field(f);
        }
        let text = w.critical_path.to_json().render();
        let mut last = 0;
        for f in CriticalPathStats::FIELDS {
            let at = text.find(&format!("\"{f}\"")).expect(f);
            assert!(at > last, "critical-path field {f} out of order");
            last = at;
            let _ = w.critical_path.field(f);
        }
    }

    /// Re-renders the synthetic report at `version` with the v3-only row
    /// fields dropped — a faithful pre-v3 report.
    fn stripped_report(version: i64) -> String {
        let mut report = synthetic_report();
        report.schema_version = version;
        let mut j = Json::parse(&report.to_json()).expect("own serialization parses");
        let Json::Obj(fields) = &mut j else {
            unreachable!("report root is an object")
        };
        for (key, v) in fields.iter_mut() {
            if key != "workloads" {
                continue;
            }
            let Json::Arr(rows) = v else {
                unreachable!("workloads is an array")
            };
            for row in rows {
                let Json::Obj(row_fields) = row else {
                    unreachable!("workload row is an object")
                };
                row_fields.retain(|(k, _)| k != "critical_path" && k != "round_wall_s");
            }
        }
        j.render()
    }

    #[test]
    fn v2_report_without_critical_path_parses_for_the_diff_gate() {
        // A pre-v3 report has neither critical_path nor round_wall_s; it
        // must parse with zero/empty defaults so bench-diff can raise the
        // schema_version mismatch itself rather than dying on a parse.
        let text = stripped_report(2);
        assert!(!text.contains("critical_path"));
        assert!(!text.contains("round_wall_s"));
        let back = BenchReport::from_json(&text).expect("v2 parses");
        assert_eq!(back.workloads[0].critical_path.barrier_makespan, 0);
        assert!(back.workloads[0].round_wall_s.is_empty());
        // At the current schema the fields are required.
        let err = BenchReport::from_json(&stripped_report(SCHEMA_VERSION)).unwrap_err();
        assert!(err.contains("critical_path"), "{err}");
    }

    #[test]
    fn v3_report_without_spill_words_parses_for_the_diff_gate() {
        // A pre-v4 report has no spill_words; every such run was fully
        // resident, so the 0 default is faithful and the version mismatch
        // stays bench-diff's finding.
        let mut report = synthetic_report();
        report.schema_version = 3;
        let text = report
            .to_json()
            .replace("        \"spill_words\": 0,\n", "")
            .replace("        \"spill_words\": 256,\n", "");
        assert!(!text.contains("spill_words"));
        let back = BenchReport::from_json(&text).expect("v3 parses");
        assert!(back.workloads.iter().all(|w| w.model.spill_words == 0));
        // At the current schema the field is required.
        let v4 = synthetic_report()
            .to_json()
            .replace("        \"spill_words\": 0,\n", "")
            .replace("        \"spill_words\": 256,\n", "");
        let err = BenchReport::from_json(&v4).unwrap_err();
        assert!(err.contains("spill_words"), "{err}");
    }

    #[test]
    fn v5_report_without_checkpoint_fields_parses_for_the_diff_gate() {
        // A pre-v6 report has neither checkpoint_words nor
        // replayed_rounds; every such run was fault-free, so the 0
        // defaults are faithful and the version mismatch stays
        // bench-diff's finding.
        let mut report = synthetic_report();
        report.schema_version = 5;
        let text = report
            .to_json()
            .replace("        \"checkpoint_words\": 0,\n", "")
            .replace("        \"checkpoint_words\": 1024,\n", "")
            .replace("        \"replayed_rounds\": 0,\n", "")
            .replace("        \"replayed_rounds\": 2,\n", "");
        assert!(!text.contains("checkpoint_words"));
        assert!(!text.contains("replayed_rounds"));
        let back = BenchReport::from_json(&text).expect("v5 parses");
        assert!(back
            .workloads
            .iter()
            .all(|w| w.model.checkpoint_words == 0 && w.model.replayed_rounds == 0));
        // At the current schema both fields are required.
        let v6 = synthetic_report()
            .to_json()
            .replace("        \"checkpoint_words\": 0,\n", "")
            .replace("        \"checkpoint_words\": 1024,\n", "");
        let err = BenchReport::from_json(&v6).unwrap_err();
        assert!(err.contains("checkpoint_words"), "{err}");
    }

    #[test]
    fn v4_report_without_stragglers_parses_for_the_diff_gate() {
        // A pre-v5 report has neither the straggler breakdown nor the
        // optional host_breakdown; both must default so the version
        // mismatch stays bench-diff's finding.
        let mut report = synthetic_report();
        report.schema_version = 4;
        let text = report
            .to_json()
            .replace("        \"straggler_machine\": 3,\n", "")
            .replace("        \"straggler_machine\": 0,\n", "")
            // Last field of its object: the comma belongs to the line above.
            .replace(",\n        \"straggler_stall_words\": 12", "")
            .replace(",\n        \"straggler_stall_words\": 0", "");
        let text = {
            // Drop the host_breakdown object wholesale.
            let start = text
                .find(",\n      \"host_breakdown\"")
                .expect("breakdown present");
            let end = text[start..].find("}").expect("object closes") + start + 1;
            format!("{}{}", &text[..start], &text[end..])
        };
        assert!(!text.contains("straggler"));
        assert!(!text.contains("host_breakdown"));
        let back = BenchReport::from_json(&text).expect("v4 parses");
        assert_eq!(back.workloads[0].critical_path.straggler_machine, -1);
        assert_eq!(back.workloads[0].critical_path.straggler_stall_words, 0);
        assert!(back.workloads[0].host_breakdown.is_none());
        // At the current schema the straggler fields are required (the
        // breakdown stays optional — informational by design).
        let v5 = synthetic_report()
            .to_json()
            .replace("        \"straggler_machine\": 3,\n", "");
        let err = BenchReport::from_json(&v5).unwrap_err();
        assert!(err.contains("straggler_machine"), "{err}");
    }

    #[test]
    fn future_schema_version_rejected() {
        let mut report = synthetic_report();
        report.schema_version = SCHEMA_VERSION + 1;
        let err = BenchReport::from_json(&report.to_json()).unwrap_err();
        assert!(err.contains("newer"), "{err}");
    }

    #[test]
    fn v1_report_without_executor_parses_for_the_diff_gate() {
        // A pre-executor-axis report must not die as a parse error; the
        // schema_version mismatch is bench-diff's finding to raise.
        let mut report = synthetic_report();
        report.schema_version = 1;
        let text = report
            .to_json()
            .replace("      \"executor\": \"distributed\",\n", "")
            .replace("      \"executor\": \"roundcompress\",\n", "");
        assert!(!text.contains("executor"));
        let back = BenchReport::from_json(&text).expect("v1 parses");
        assert_eq!(back.schema_version, 1);
        assert!(back.workloads.iter().all(|w| w.executor == "distributed"));
        // At the current schema the field stays required.
        let v2 = synthetic_report()
            .to_json()
            .replace("      \"executor\": \"distributed\",\n", "");
        let err = BenchReport::from_json(&v2).unwrap_err();
        assert!(err.contains("executor"), "{err}");
    }

    #[test]
    fn missing_field_is_a_parse_error() {
        let text = synthetic_report()
            .to_json()
            .replace("\"phases\"", "\"fases\"");
        let err = BenchReport::from_json(&text).unwrap_err();
        assert!(err.contains("phases"), "{err}");
    }
}
