//! The benchmark harness: a fixed workload matrix (generator families ×
//! weight models × ε × size tiers × **executors**) driven through the
//! audited executors plus the classic baselines, producing a
//! [`BenchReport`].
//!
//! The executor axis ([`ExecutorKind`]) is how alternative algorithms
//! enter the perf record: every registered executor runs every workload,
//! so `BENCH_core.json` carries per-executor model costs and quality and
//! `bench-diff` gates them all. `experiments compress` renders the same
//! data as a head-to-head table.
//!
//! Determinism contract: everything in the report except `wall_clock_s`
//! is a pure function of the workload definition — bit-identical at any
//! host pool width and across runs. `tests/bench_gate.rs` and the CI
//! `perf-gate` job enforce this against `benchmarks/baseline.json`.
//! Across *machines* the floating-point quality values additionally
//! depend on the host libm's last-ulp rounding of `powf`/`ln` (Zipf
//! sampling, iteration schedules); if a runner-image upgrade ever shifts
//! those, the gate fails loudly and the fix is a baseline refresh.

use crate::schema::{
    BenchReport, CriticalPathStats, HostBreakdown, ModelCosts, Quality, WorkloadReport,
    SCHEMA_VERSION,
};
use crate::table::{f, Table};
use mpc_sim::RoundScheduler;
use mwvc_baselines::{bar_yehuda_even, greedy_ratio_cover, lp_optimum};
use mwvc_core::mpc::{DistributedExecutor, Executor, ExecutorOutcome, MpcMwvcConfig};
use mwvc_graph::{EdgeIndex, GraphPreset, WeightModel, WeightedGraph};
use mwvc_roundcompress::{RoundCompressConfig, RoundCompressExecutor};
use std::time::Instant;

/// Base seed of the matrix; per-workload seeds are derived from it and
/// the workload id, so adding a workload never reshuffles the others.
pub const BENCH_BASE_SEED: u64 = 0xbe_ec4;

/// Average degree of every workload instance.
const AVG_DEGREE: usize = 16;

/// Which slice of the matrix to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchSuite {
    /// One size tier — the CI perf gate (`experiments bench --quick`).
    Quick,
    /// All size tiers.
    Full,
}

impl BenchSuite {
    /// Label recorded in the report.
    pub fn label(&self) -> &'static str {
        match self {
            BenchSuite::Quick => "quick",
            BenchSuite::Full => "full",
        }
    }

    /// Instance size tiers of the suite.
    pub fn tiers(&self) -> &'static [usize] {
        match self {
            BenchSuite::Quick => &[1024],
            BenchSuite::Full => &[1024, 4096],
        }
    }
}

/// The benched executors — the executor axis of the workload matrix.
/// Each kind builds a fresh [`Executor`] per workload from the workload's
/// ε and derived seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorKind {
    /// Ghaffari–Jin–Nilis Algorithm 2 as audited message-passing dataflow
    /// (the baseline executor).
    Distributed,
    /// The Assadi-style round-compression executor
    /// (`mwvc_roundcompress`).
    RoundCompress,
}

impl ExecutorKind {
    /// All benched executors, in stable matrix order.
    pub fn all() -> [ExecutorKind; 2] {
        [ExecutorKind::Distributed, ExecutorKind::RoundCompress]
    }

    /// The executor's stable name (matches [`Executor::name`]; appears in
    /// workload ids and `BENCH_core.json` rows).
    pub fn label(&self) -> &'static str {
        match self {
            ExecutorKind::Distributed => "distributed",
            ExecutorKind::RoundCompress => "roundcompress",
        }
    }

    /// Parses a name as printed by [`ExecutorKind::label`].
    pub fn from_name(name: &str) -> Option<ExecutorKind> {
        ExecutorKind::all().into_iter().find(|k| k.label() == name)
    }

    /// Builds the executor for one workload run, under `scheduler` for
    /// the host cluster's round execution.
    pub fn build(&self, epsilon: f64, seed: u64, scheduler: RoundScheduler) -> Box<dyn Executor> {
        match self {
            ExecutorKind::Distributed => Box::new(DistributedExecutor::new(
                MpcMwvcConfig::practical(epsilon, seed).with_scheduler(scheduler),
            )),
            ExecutorKind::RoundCompress => Box::new(RoundCompressExecutor::new(
                RoundCompressConfig::practical(epsilon, seed).with_scheduler(scheduler),
            )),
        }
    }
}

/// One cell of the workload matrix.
#[derive(Debug, Clone)]
pub struct BenchWorkload {
    /// Stable id: `{family}-{weights}-{eps}-n{tier}-{executor}`.
    pub id: String,
    /// Graph family preset.
    pub preset: GraphPreset,
    /// Weight-model label (part of the id).
    pub weights_label: &'static str,
    /// Weight model (ignored for [`GraphPreset::File`] presets, which
    /// carry their own weights).
    pub weights: WeightModel,
    /// Accuracy parameter.
    pub epsilon: f64,
    /// Size tier the workload belongs to.
    pub tier_n: usize,
    /// Executor that runs the workload.
    pub executor: ExecutorKind,
    /// Host round scheduler for the executor's cluster. Deliberately
    /// **not** part of the workload id: every gated field is bit-identical
    /// across schedulers, so reports generated in either mode diff
    /// cleanly against the same baseline (the CI perf-gate runs both).
    pub scheduler: RoundScheduler,
}

impl BenchWorkload {
    /// The instance key: workloads sharing it run on the *same* weighted
    /// graph (ε varies only the algorithm, not the input).
    pub fn instance_key(&self) -> String {
        format!(
            "{}-{}-n{}",
            self.preset.family(),
            self.weights_label,
            self.tier_n
        )
    }
}

/// The weight-model axis.
fn weight_axis() -> Vec<(&'static str, WeightModel)> {
    vec![
        ("uniform", WeightModel::Uniform { lo: 1.0, hi: 10.0 }),
        (
            "zipf",
            WeightModel::Zipf {
                exponent: 1.2,
                scale: 100.0,
            },
        ),
    ]
}

/// The ε axis: the loose/cheap end and the tight/expensive end.
const EPS_AXIS: [(&str, f64); 2] = [("eps4", 0.25), ("eps16", 0.0625)];

/// The full workload matrix of a suite, in stable order: tiers, then
/// families, then weights, then ε, then executors (innermost, so entries
/// sharing an instance stay adjacent for the one-slot cache and
/// head-to-head rows sit next to each other).
pub fn workload_matrix(suite: BenchSuite) -> Vec<BenchWorkload> {
    let mut out = Vec::new();
    for &n in suite.tiers() {
        for preset in GraphPreset::standard_families(n, AVG_DEGREE) {
            for (weights_label, weights) in weight_axis() {
                for (eps_label, epsilon) in EPS_AXIS {
                    for executor in ExecutorKind::all() {
                        out.push(BenchWorkload {
                            id: format!(
                                "{}-{weights_label}-{eps_label}-n{n}-{}",
                                preset.family(),
                                executor.label()
                            ),
                            preset: preset.clone(),
                            weights_label,
                            weights,
                            epsilon,
                            tier_n: n,
                            executor,
                            scheduler: RoundScheduler::Barrier,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Out-of-matrix workloads for a real graph file ([`GraphPreset::File`]):
/// the file's own weights, the standard ε axis, one entry per executor.
/// These run through `experiments bench --graph FILE`; they are not part
/// of the committed baseline, so gate such reports against a baseline
/// generated with the same flag.
pub fn file_workloads(path: &str) -> Result<Vec<BenchWorkload>, String> {
    let preset = GraphPreset::from_path(path)?;
    // Cheap existence check so a bad path fails at flag-parse time; the
    // file itself is parsed once, by `build_instance` through the shared
    // one-slot instance cache (the id carries no vertex count, which
    // would force a full parse here).
    std::fs::metadata(path).map_err(|e| format!("cannot open {path:?}: {e}"))?;
    let stem = path
        .rsplit('/')
        .next()
        .unwrap_or(path)
        .split('.')
        .next()
        .unwrap_or("graph");
    let mut out = Vec::new();
    for (eps_label, epsilon) in EPS_AXIS {
        for executor in ExecutorKind::all() {
            out.push(BenchWorkload {
                id: format!("file-{stem}-{eps_label}-{}", executor.label()),
                preset: preset.clone(),
                weights_label: "file",
                weights: WeightModel::Uniform { lo: 1.0, hi: 1.0 },
                epsilon,
                tier_n: 0, // unknown until loaded; reports carry the real n
                executor,
                scheduler: RoundScheduler::Barrier,
            });
        }
    }
    Ok(out)
}

/// FNV-1a of a string — stable seed derivation from workload ids.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A built instance with its ε-independent reference quantities, shared
/// by all workloads with the same [`BenchWorkload::instance_key`].
pub struct InstanceContext {
    /// The weighted instance.
    pub wg: WeightedGraph,
    /// Edge index of the instance.
    pub eidx: EdgeIndex,
    /// Exact LP relaxation optimum.
    pub lp_bound: f64,
    /// Greedy baseline cover weight.
    pub greedy_weight: f64,
    /// Bar-Yehuda–Even baseline cover weight.
    pub bye_weight: f64,
}

/// Builds just the weighted instance of a workload — deterministic in
/// its instance key, no reference quantities. File presets load their
/// stored weights; generated presets sample the workload's weight model.
pub fn build_graph(w: &BenchWorkload) -> WeightedGraph {
    let key = w.instance_key();
    let graph_seed = BENCH_BASE_SEED ^ fnv1a(&key);
    if matches!(w.preset, GraphPreset::File { .. }) {
        w.preset
            .load_weighted()
            .unwrap_or_else(|e| panic!("file workload {}: {e}", w.id))
    } else {
        let g = w.preset.build(graph_seed);
        let weights = w.weights.sample(&g, graph_seed ^ 0x5eed_0001);
        WeightedGraph::new(g, weights)
    }
}

/// Builds the instance (graph, weights, LP bound, baselines) of a
/// workload. Deterministic in the workload's instance key. File presets
/// load their stored weights; generated presets sample the workload's
/// weight model.
pub fn build_instance(w: &BenchWorkload) -> InstanceContext {
    let wg = build_graph(w);
    let eidx = EdgeIndex::build(&wg.graph);
    let lp_bound = lp_optimum(&wg).value;
    let greedy_weight = greedy_ratio_cover(&wg).weight(&wg);
    let bye = bar_yehuda_even(&wg);
    let bye_weight = bye.cover.weight(&wg);
    InstanceContext {
        wg,
        eidx,
        lp_bound,
        greedy_weight,
        bye_weight,
    }
}

/// Runs one workload on a prebuilt instance through its executor.
pub fn run_on_instance(w: &BenchWorkload, ctx: &InstanceContext) -> WorkloadReport {
    run_on_instance_repeat(w, ctx, 1)
}

/// Runs one workload `repeat >= 1` times, reporting the **minimum**
/// wall-clock over the runs. Model costs and quality are deterministic
/// (identical every run), so repetition only stabilizes the informational
/// `wall_clock_s` column against host noise — min-of-N is the standard
/// low-noise estimator for a deterministic computation.
pub fn run_on_instance_repeat(
    w: &BenchWorkload,
    ctx: &InstanceContext,
    repeat: usize,
) -> WorkloadReport {
    assert!(repeat >= 1, "repeat must be at least 1");
    let algo_seed = BENCH_BASE_SEED ^ fnv1a(&w.id);
    let exec = w.executor.build(w.epsilon, algo_seed, w.scheduler);
    let mut wall_clock_s = f64::INFINITY;
    let mut outcome = None;
    for _ in 0..repeat {
        let start = Instant::now();
        let out = exec.run(&ctx.wg);
        wall_clock_s = wall_clock_s.min(start.elapsed().as_secs_f64());
        outcome = Some(out);
    }
    let outcome = outcome.expect("at least one run");
    outcome
        .solution
        .verify(&ctx.wg, &ctx.eidx)
        .expect("every executor must produce a valid certified cover");
    let cost = outcome.cost;
    let traffic = cost.traffic.expect("benched executors carry traffic");
    let cover_weight = outcome.solution.weight(&ctx.wg);
    let certified_ratio = outcome.solution.certified_ratio(&ctx.wg, &ctx.eidx);
    WorkloadReport {
        id: w.id.clone(),
        executor: w.executor.label().to_string(),
        family: w.preset.family().to_string(),
        weights: w.weights_label.to_string(),
        epsilon: w.epsilon,
        n: ctx.wg.num_vertices() as i64,
        m: ctx.wg.num_edges() as i64,
        model: ModelCosts {
            phases: cost.phases as i64,
            mpc_rounds: cost.mpc_rounds as i64,
            machines: traffic.machines as i64,
            memory_cap_words: traffic.memory_cap_words as i64,
            total_message_words: traffic.total_message_words as i64,
            peak_round_words: traffic.peak_round_words as i64,
            peak_resident_words: traffic.peak_resident_words as i64,
            spill_words: traffic.spill_words as i64,
            checkpoint_words: traffic.checkpoint_words as i64,
            replayed_rounds: traffic.replayed_rounds as i64,
            violations: traffic.violations as i64,
        },
        quality: Quality {
            cover_weight,
            cover_size: outcome.solution.cover.size() as i64,
            certified_ratio,
            lp_bound: ctx.lp_bound,
            ratio_vs_lp: cover_weight / ctx.lp_bound,
            greedy_weight: ctx.greedy_weight,
            bye_weight: ctx.bye_weight,
        },
        critical_path: {
            let (straggler_machine, straggler_stall_words) = outcome
                .critical_path
                .straggler()
                .map_or((-1, 0), |(machine, stall)| (machine as i64, stall as i64));
            CriticalPathStats {
                barrier_makespan: outcome.critical_path.barrier_makespan as i64,
                pipelined_makespan: outcome.critical_path.pipelined_makespan as i64,
                barrier_stall: outcome.critical_path.barrier_stall as i64,
                straggler_machine,
                straggler_stall_words,
            }
        },
        wall_clock_s,
        round_wall_s: outcome.round_wall,
        host_breakdown: if outcome.host_phases.is_empty() {
            None
        } else {
            Some(HostBreakdown {
                route_s: outcome.host_phases.iter().map(|p| p.route_s).sum(),
                compute_s: outcome.host_phases.iter().map(|p| p.compute_s).sum(),
                spill_s: outcome.host_phases.iter().map(|p| p.spill_s).sum(),
            })
        },
    }
}

/// Runs one workload and returns the raw executor outcome — the full
/// audited trace (critical-path rows, model-domain events) plus the
/// informational host phases. This is the `experiments trace` path: it
/// skips the reference quantities ([`build_instance`] computes an exact
/// LP optimum) because the exporters only consume the trace.
pub fn run_for_trace(w: &BenchWorkload) -> ExecutorOutcome {
    let wg = build_graph(w);
    let algo_seed = BENCH_BASE_SEED ^ fnv1a(&w.id);
    let exec = w.executor.build(w.epsilon, algo_seed, w.scheduler);
    exec.run(&wg)
}

/// Builds and runs a single workload end to end (tests and spot checks;
/// [`run_suite`] shares instances across ε instead).
pub fn run_workload(w: &BenchWorkload) -> WorkloadReport {
    run_on_instance(w, &build_instance(w))
}

/// Runs a full suite, returning the report and a human-readable table.
pub fn run_suite(suite: BenchSuite) -> (BenchReport, Table) {
    run_workloads(suite.label(), workload_matrix(suite))
}

/// Runs an explicit workload list (a suite matrix, a filtered slice, or
/// file workloads appended) under a suite label, one run per workload.
pub fn run_workloads(suite_label: &str, matrix: Vec<BenchWorkload>) -> (BenchReport, Table) {
    run_workloads_repeat(suite_label, matrix, 1)
}

/// [`run_workloads`] with `repeat` executor runs per workload (min-of-N
/// wall-clock; see [`run_on_instance_repeat`]).
pub fn run_workloads_repeat(
    suite_label: &str,
    matrix: Vec<BenchWorkload>,
    repeat: usize,
) -> (BenchReport, Table) {
    let mut table = Table::new(
        format!(
            "BENCH model costs & quality ({suite_label} suite, {} workloads, seed {BENCH_BASE_SEED:#x})",
            matrix.len()
        ),
        &[
            "workload",
            "n",
            "m",
            "phases",
            "rounds",
            "msg words",
            "peak res",
            "cover w",
            "cert",
            "w/LP*",
            "wall s",
        ],
    );
    let mut workloads = Vec::with_capacity(matrix.len());
    let mut cached: Option<(String, InstanceContext)> = None;
    for w in &matrix {
        let key = w.instance_key();
        // The matrix is ordered so equal instance keys are adjacent; a
        // one-slot cache reuses the graph + LP bound across the ε axis.
        if cached.as_ref().map(|(k, _)| k.as_str()) != Some(key.as_str()) {
            eprintln!("[bench] building instance {key}...");
            cached = Some((key, build_instance(w)));
        }
        let ctx = &cached.as_ref().unwrap().1;
        let report = run_on_instance_repeat(w, ctx, repeat);
        table.push(vec![
            report.id.clone(),
            report.n.to_string(),
            report.m.to_string(),
            report.model.phases.to_string(),
            report.model.mpc_rounds.to_string(),
            report.model.total_message_words.to_string(),
            report.model.peak_resident_words.to_string(),
            f(report.quality.cover_weight, 2),
            f(report.quality.certified_ratio, 3),
            f(report.quality.ratio_vs_lp, 3),
            f(report.wall_clock_s, 3),
        ]);
        workloads.push(report);
    }
    let report = BenchReport {
        schema_version: SCHEMA_VERSION,
        suite: suite_label.to_string(),
        seed: BENCH_BASE_SEED as i64,
        hardware_threads: std::thread::available_parallelism().map_or(1, |x| x.get()) as i64,
        workloads,
    };
    (report, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_shape_and_unique_ids() {
        let m = workload_matrix(BenchSuite::Quick);
        // 5 families × 2 weight models × 2 ε × 1 tier × 2 executors.
        assert_eq!(m.len(), 40);
        let mut ids: Vec<&str> = m.iter().map(|w| w.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 40, "workload ids must be unique");
        assert!(m
            .iter()
            .any(|w| w.id == "gnp-uniform-eps4-n1024-distributed"));
        assert!(m
            .iter()
            .any(|w| w.id == "bipartite-zipf-eps16-n1024-roundcompress"));
        // Both executors cover every base workload.
        for k in ExecutorKind::all() {
            assert_eq!(m.iter().filter(|w| w.executor == k).count(), 20);
        }
    }

    #[test]
    fn executor_kinds_roundtrip_names() {
        for k in ExecutorKind::all() {
            assert_eq!(ExecutorKind::from_name(k.label()), Some(k));
            // The kind's label agrees with the executor's own name.
            assert_eq!(k.build(0.1, 1, RoundScheduler::Barrier).name(), k.label());
        }
        assert_eq!(ExecutorKind::from_name("bogus"), None);
    }

    #[test]
    fn full_matrix_doubles_quick() {
        let q = workload_matrix(BenchSuite::Quick).len();
        let f = workload_matrix(BenchSuite::Full).len();
        assert_eq!(f, 2 * q);
    }

    #[test]
    fn eps_axis_shares_the_instance() {
        let m = workload_matrix(BenchSuite::Quick);
        let a = m.iter().find(|w| w.id.contains("eps4")).unwrap();
        let b = m
            .iter()
            .find(|w| w.id == a.id.replace("eps4", "eps16"))
            .unwrap();
        assert_eq!(a.instance_key(), b.instance_key());
        assert_ne!(a.epsilon, b.epsilon);
    }

    #[test]
    fn tiny_workload_runs_and_reports_consistently_per_executor() {
        // A miniature out-of-matrix workload keeps this test fast while
        // exercising the whole reporting path, for every executor kind.
        for executor in ExecutorKind::all() {
            let w = BenchWorkload {
                id: format!("gnm-uniform-eps16-n256-test-{}", executor.label()),
                preset: GraphPreset::Gnm {
                    n: 256,
                    avg_degree: 16,
                },
                weights_label: "uniform",
                weights: WeightModel::Uniform { lo: 1.0, hi: 10.0 },
                epsilon: 0.0625,
                tier_n: 256,
                executor,
                scheduler: RoundScheduler::Barrier,
            };
            let r = run_workload(&w);
            assert_eq!(r.executor, executor.label());
            assert_eq!(r.n, 256);
            assert_eq!(r.m, 2048);
            assert_eq!(r.model.violations, 0);
            assert!(r.model.mpc_rounds >= 6, "at least the closing rounds");
            assert!(r.model.total_message_words > 0);
            assert!(r.quality.lp_bound > 0.0);
            assert!(r.quality.cover_weight >= r.quality.lp_bound - 1e-9);
            assert!(r.quality.ratio_vs_lp >= 1.0 - 1e-9);
            assert!(r.quality.certified_ratio >= 1.0 - 1e-9);
            // The critical-path statistic covers every round and never
            // has the pipelined makespan exceed the barrier one.
            assert!(r.critical_path.barrier_makespan > 0);
            assert!(r.critical_path.pipelined_makespan <= r.critical_path.barrier_makespan);
            assert_eq!(r.round_wall_s.len() as i64, r.model.mpc_rounds);
            // Model costs and quality are reproducible bit-for-bit.
            let r2 = run_workload(&w);
            assert_eq!(r.model, r2.model);
            assert_eq!(r.quality, r2.quality);
            assert_eq!(r.critical_path, r2.critical_path);
        }
    }

    #[test]
    fn schedulers_agree_on_every_gated_and_deterministic_field() {
        // The scheduler axis must be invisible to everything but host
        // wall-clock: same workload, both modes, identical model costs,
        // quality, and critical-path statistics.
        for executor in ExecutorKind::all() {
            let mk = |scheduler| BenchWorkload {
                id: format!("gnm-uniform-eps4-n256-sched-{}", executor.label()),
                preset: GraphPreset::Gnm {
                    n: 256,
                    avg_degree: 16,
                },
                weights_label: "uniform",
                weights: WeightModel::Uniform { lo: 1.0, hi: 10.0 },
                epsilon: 0.25,
                tier_n: 256,
                executor,
                scheduler,
            };
            let barrier = run_workload(&mk(RoundScheduler::Barrier));
            let pipelined = run_workload(&mk(RoundScheduler::Pipelined));
            assert_eq!(barrier.model, pipelined.model, "{}", executor.label());
            assert_eq!(barrier.quality, pipelined.quality, "{}", executor.label());
            assert_eq!(
                barrier.critical_path,
                pipelined.critical_path,
                "{}",
                executor.label()
            );
            assert_eq!(
                barrier.round_wall_s.len(),
                pipelined.round_wall_s.len(),
                "{}",
                executor.label()
            );
        }
    }

    #[test]
    fn file_workloads_run_with_stored_weights() {
        use mwvc_graph::io::write_edge_list;
        use mwvc_graph::{Graph, VertexWeights};
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let wg = WeightedGraph::new(
            g,
            VertexWeights::from_vec(vec![1.0, 3.0, 1.0, 3.0, 1.0, 3.0]),
        );
        let path = std::env::temp_dir().join(format!("bench-file-{}.edges", std::process::id()));
        let mut buf = Vec::new();
        write_edge_list(&wg, &mut buf).unwrap();
        std::fs::write(&path, &buf).unwrap();

        let ws = file_workloads(path.to_str().unwrap()).expect("file workloads");
        // ε axis × executor axis, ids unique and labeled "file".
        assert_eq!(ws.len(), 2 * ExecutorKind::all().len());
        for w in &ws {
            assert!(w.id.starts_with("file-bench-file"), "{}", w.id);
            assert_eq!(w.weights_label, "file");
            let r = run_workload(w);
            assert_eq!(r.family, "file");
            assert_eq!(r.n, 6);
            assert_eq!(r.m, 6);
            // The stored weights were used: the optimal cover takes the
            // three weight-1 vertices, and every executor must stay within
            // factor 2+O(ε) of LP* = 3.
            assert!((r.quality.lp_bound - 3.0).abs() < 1e-6, "{r:?}");
        }
        let _ = std::fs::remove_file(&path);

        assert!(file_workloads("/missing/nope.edges").is_err());
        assert!(file_workloads("bad-extension.zzz").is_err());
    }
}
