//! The **huge** bench tier: a 10⁸-edge out-of-core run in a few hundred
//! MB of host RAM.
//!
//! Unlike the quick/full matrices (which build in-memory instances and
//! gate against `benchmarks/baseline.json`), the huge tier exists to
//! prove the out-of-core contract at a scale where Θ(m) host memory is
//! simply not available: edges stream from a generator into a
//! byte-budgeted [`StreamingGraphBuilder`], the run executes
//! [`run_outofcore`] under [`MemoryBudget::Enforced`], and the report
//! records `peak_resident_words` and `spill_words` like any other row.
//!
//! It is **flag-gated** (`experiments bench --tier huge`) and
//! nightly-only in CI — never part of the perf gate, because a multi-GB
//! disk footprint and a multi-minute run have no place in per-PR CI.
//! Quality caveats at this scale, reflected in the row:
//!
//! * `quality.lp_bound` carries the run's own **pricing dual lower
//!   bound** (a genuine lower bound on OPT, but not the LP optimum — the
//!   LP solver needs the whole instance in memory),
//! * `certified_ratio` and `ratio_vs_lp` are the cover weight over that
//!   dual bound,
//! * `greedy_weight`/`bye_weight` are 0: the in-memory baselines are not
//!   run.
//!
//! Every parameter is overridable via `HUGE_*` environment variables
//! (see [`HugeParams::from_env`]) so the CI smoke job can run a
//! miniature instance through the identical code path.

use crate::schema::{
    BenchReport, CriticalPathStats, ModelCosts, Quality, WorkloadReport, SCHEMA_VERSION,
};
use crate::table::{f, Table};
use mpc_sim::{MemoryBudget, MpcConfig};
use mwvc_core::mpc::{run_outofcore, OocConfig};
use mwvc_graph::generators::gnm_stream_into;
use mwvc_graph::StreamingGraphBuilder;
use std::time::Instant;

/// Parameters of a huge-tier run. Defaults are the headline scale; every
/// field has a `HUGE_*` environment override for smoke-scale runs.
#[derive(Debug, Clone, Copy)]
pub struct HugeParams {
    /// Vertices of the generated instance.
    pub n: usize,
    /// Edge samples drawn by the streaming G(n,m) generator (duplicates
    /// are deduplicated by the builder, so the built `m` is slightly
    /// lower).
    pub edges: u64,
    /// Machines of the executing cluster.
    pub machines: usize,
    /// Per-machine budget as a multiple of `n` (the near-linear regime
    /// `S = c·n`); must leave the shards too big to stay resident, or the
    /// tier proves nothing.
    pub memory_factor: usize,
    /// Byte budget of the streaming graph builder's in-RAM buffer.
    pub byte_budget: usize,
    /// Words per spill-replay batch of the out-of-core executor.
    pub batch_words: usize,
    /// Freeze threshold of the pricing executor.
    pub epsilon: f64,
    /// Iteration cap of the pricing executor.
    pub max_iterations: usize,
    /// Base seed (graph and weights derive from it).
    pub seed: u64,
}

impl Default for HugeParams {
    fn default() -> Self {
        Self {
            n: 3_125_000,
            edges: 100_000_000,
            machines: 4,
            memory_factor: 16,
            byte_budget: 256 << 20,
            batch_words: 1 << 16,
            epsilon: 0.1,
            max_iterations: 300,
            seed: 0xb16_b00c,
        }
    }
}

impl HugeParams {
    /// Defaults with `HUGE_N`, `HUGE_EDGES`, `HUGE_MACHINES`,
    /// `HUGE_MEMORY_FACTOR`, `HUGE_BYTE_BUDGET`, `HUGE_BATCH_WORDS`,
    /// `HUGE_MAX_ITERATIONS` and `HUGE_SEED` environment overrides
    /// applied. A set-but-unparsable variable is an error — a typo must
    /// not silently run the 10⁸-edge default.
    pub fn from_env() -> Result<Self, String> {
        let mut p = HugeParams::default();
        fn over<T: std::str::FromStr>(key: &str, slot: &mut T) -> Result<(), String> {
            if let Ok(raw) = std::env::var(key) {
                *slot = raw
                    .parse()
                    .map_err(|_| format!("{key}={raw:?} is not a valid value"))?;
            }
            Ok(())
        }
        over("HUGE_N", &mut p.n)?;
        over("HUGE_EDGES", &mut p.edges)?;
        over("HUGE_MACHINES", &mut p.machines)?;
        over("HUGE_MEMORY_FACTOR", &mut p.memory_factor)?;
        over("HUGE_BYTE_BUDGET", &mut p.byte_budget)?;
        over("HUGE_BATCH_WORDS", &mut p.batch_words)?;
        over("HUGE_MAX_ITERATIONS", &mut p.max_iterations)?;
        over("HUGE_SEED", &mut p.seed)?;
        if p.n == 0 || p.machines == 0 {
            return Err("HUGE_N and HUGE_MACHINES must be positive".into());
        }
        Ok(p)
    }
}

/// Deterministic per-vertex uniform weight in `[1, 10)` — splitmix64 of
/// `(seed, v)`, so no Θ(n) generator state is ever needed beyond the
/// weight vector itself.
fn vertex_weight(seed: u64, v: u64) -> f64 {
    let mut x = seed ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    1.0 + 9.0 * ((x >> 11) as f64 / (1u64 << 53) as f64)
}

/// Runs the huge tier end to end: stream-build the on-disk instance,
/// execute out-of-core under an enforced budget, report one schema-v4
/// row. The OCSR file lives in the system temp directory (or
/// `HUGE_SCRATCH` if set) and is removed before returning.
pub fn run_huge(p: &HugeParams) -> Result<(BenchReport, Table), String> {
    let scratch = std::env::var("HUGE_SCRATCH")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir());
    let path = scratch.join(format!("huge-{}-{}.ocsr", std::process::id(), p.seed));

    eprintln!(
        "[huge] streaming {} edge samples over n={} into {} (builder budget {} MB)...",
        p.edges,
        p.n,
        path.display(),
        p.byte_budget >> 20
    );
    let build_start = Instant::now();
    let mut builder = StreamingGraphBuilder::new(p.n, p.byte_budget, None);
    gnm_stream_into(p.n, p.edges, p.seed, &mut builder);
    let csr = builder.finish(&path)?;
    eprintln!(
        "[huge] built {} edges ({} buckets) in {:.1}s",
        csr.num_edges(),
        csr.num_buckets(),
        build_start.elapsed().as_secs_f64()
    );

    let weights: Vec<f64> = (0..p.n as u64)
        .map(|v| vertex_weight(p.seed ^ 0x5eed_0002, v))
        .collect();
    let s = p.memory_factor * p.n;
    let cluster = MpcConfig::new(p.machines, s).with_budget(MemoryBudget::Enforced);
    let cfg = OocConfig {
        epsilon: p.epsilon,
        max_iterations: p.max_iterations,
        batch_words: p.batch_words,
    };

    eprintln!(
        "[huge] running out-of-core pricing: M={} S={} words (enforced)...",
        p.machines, s
    );
    let run_start = Instant::now();
    let out = run_outofcore(&csr, &weights, &cfg, cluster);
    std::fs::remove_file(&path).ok();
    let out = out?;
    let wall_clock_s = run_start.elapsed().as_secs_f64();

    let summary = out.trace.summary();
    let cover_weight = out.cover_weight(&weights);
    let ratio = cover_weight / out.dual_lower_bound;
    let id = format!("gnm-uniform-huge-n{}-outofcore", p.n);
    let row = WorkloadReport {
        id: id.clone(),
        executor: "outofcore".into(),
        family: "gnm".into(),
        weights: "uniform".into(),
        epsilon: p.epsilon,
        n: p.n as i64,
        m: csr.num_edges() as i64,
        model: ModelCosts {
            phases: out.iterations as i64,
            mpc_rounds: summary.rounds as i64,
            machines: p.machines as i64,
            memory_cap_words: s as i64,
            total_message_words: summary.total_message_words as i64,
            peak_round_words: summary.peak_round_words as i64,
            peak_resident_words: summary.peak_resident_words as i64,
            spill_words: summary.spill_words as i64,
            checkpoint_words: summary.checkpoint_words as i64,
            replayed_rounds: summary.replayed_rounds as i64,
            violations: summary.violations as i64,
        },
        quality: Quality {
            cover_weight,
            cover_size: out.cover.size() as i64,
            // See the module docs: the dual lower bound stands in for the
            // (uncomputable at this scale) LP optimum, and the in-memory
            // baselines are not run.
            certified_ratio: ratio,
            lp_bound: out.dual_lower_bound,
            ratio_vs_lp: ratio,
            greedy_weight: 0.0,
            bye_weight: 0.0,
        },
        critical_path: {
            let (straggler_machine, straggler_stall_words) = out
                .trace
                .critical_path
                .straggler()
                .map_or((-1, 0), |(machine, stall)| (machine as i64, stall as i64));
            CriticalPathStats {
                barrier_makespan: out.trace.critical_path.barrier_makespan as i64,
                pipelined_makespan: out.trace.critical_path.pipelined_makespan as i64,
                barrier_stall: out.trace.critical_path.barrier_stall as i64,
                straggler_machine,
                straggler_stall_words,
            }
        },
        wall_clock_s,
        round_wall_s: Vec::new(),
        host_breakdown: None,
    };

    let mut table = Table::new(
        format!("BENCH huge tier (n={}, seed {:#x})", p.n, p.seed),
        &[
            "workload", "n", "m", "iters", "rounds", "peak res", "spilled", "cover w", "w/dualLB",
            "forced", "wall s",
        ],
    );
    table.push(vec![
        id,
        row.n.to_string(),
        row.m.to_string(),
        out.iterations.to_string(),
        row.model.mpc_rounds.to_string(),
        row.model.peak_resident_words.to_string(),
        row.model.spill_words.to_string(),
        f(cover_weight, 2),
        f(ratio, 3),
        out.forced.to_string(),
        f(wall_clock_s, 1),
    ]);

    let report = BenchReport {
        schema_version: SCHEMA_VERSION,
        suite: "huge".into(),
        seed: p.seed as i64,
        hardware_threads: std::thread::available_parallelism().map_or(1, |x| x.get()) as i64,
        workloads: vec![row],
    };
    Ok((report, table))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_params() -> HugeParams {
        HugeParams {
            n: 1_500,
            edges: 12_000,
            machines: 3,
            // 14 · 1500 = 21_000 words: big enough for the vertex state,
            // far too small for ~8_000-word shards to stay resident.
            memory_factor: 14,
            byte_budget: 1 << 16,
            batch_words: 512,
            epsilon: 0.1,
            max_iterations: 100,
            seed: 99,
        }
    }

    #[test]
    fn smoke_scale_run_spills_and_reports_schema_v4() {
        let (report, table) = run_huge(&smoke_params()).expect("huge smoke run");
        assert_eq!(report.schema_version, SCHEMA_VERSION);
        assert_eq!(report.suite, "huge");
        let row = &report.workloads[0];
        assert_eq!(row.executor, "outofcore");
        assert!(row.model.spill_words > 0, "the tier must actually spill");
        assert_eq!(row.model.violations, 0);
        assert!(row.model.peak_resident_words <= row.model.memory_cap_words);
        assert!(row.quality.cover_weight >= row.quality.lp_bound);
        // The report is valid schema v4 end to end.
        let back = BenchReport::from_json(&report.to_json()).expect("roundtrip");
        assert_eq!(back.workloads[0].model.spill_words, row.model.spill_words);
        assert!(table.render().contains("huge"));
    }

    #[test]
    fn smoke_run_is_deterministic_in_gated_fields() {
        let p = smoke_params();
        let (a, _) = run_huge(&p).expect("first run");
        let (b, _) = run_huge(&p).expect("second run");
        assert_eq!(a.workloads[0].model, b.workloads[0].model);
        assert_eq!(a.workloads[0].quality, b.workloads[0].quality);
    }

    #[test]
    fn env_overrides_reject_garbage() {
        // Parse logic only — set/remove of real env vars would race other
        // tests, so exercise the inner helper through a scoped variable
        // name no other test uses.
        std::env::set_var("HUGE_BATCH_WORDS", "not-a-number");
        let err = HugeParams::from_env().expect_err("garbage must not run the default scale");
        std::env::remove_var("HUGE_BATCH_WORDS");
        assert!(err.contains("HUGE_BATCH_WORDS"), "{err}");
    }

    #[test]
    fn weights_are_deterministic_and_in_range() {
        for v in 0..1000 {
            let w = vertex_weight(7, v);
            assert!((1.0..10.0).contains(&w));
            assert_eq!(w.to_bits(), vertex_weight(7, v).to_bits());
        }
    }
}
