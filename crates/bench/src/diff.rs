//! `bench-diff`: compares two [`BenchReport`]s field by field.
//!
//! Gating policy (the CI `perf-gate` job runs this against the committed
//! `benchmarks/baseline.json`):
//!
//! * **model costs** and **quality** must match the baseline *exactly* —
//!   the pipeline is deterministic, so any drift (better or worse) means
//!   either a behavioral change that needs a deliberate baseline refresh
//!   or a broken determinism contract. Both should stop a merge.
//! * **wall-clock** is reported but not gated unless a tolerance is
//!   supplied (`--wall-tolerance FRACTION`), because CI hardware noise
//!   would make a hard wall gate flaky.
//! * **critical-path statistics** follow the wall-clock policy
//!   (`--cp-tolerance FRACTION` to gate): they are deterministic, but
//!   they measure the host execution engine, not the paper's cost model,
//!   so drift there is an engine-scheduling change to review — reported
//!   as an ungated note by default.
//! * structural drift (schema version, workload set, instance shape)
//!   also fails: a stale baseline must be refreshed, not ignored.

use crate::schema::{BenchReport, CriticalPathStats, ModelCosts, Quality};
use crate::table::Table;

/// Comparator options.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiffOptions {
    /// Allowed fractional wall-clock growth per workload (e.g. `0.5`
    /// fails when a workload got >50% slower). `None` (default): report
    /// wall-clock drift but never gate on it.
    pub wall_tolerance: Option<f64>,
    /// Allowed fractional growth of each critical-path statistic
    /// (`barrier_makespan`, `pipelined_makespan`, `barrier_stall`).
    /// `None` (default): report drift as a note but never gate on it.
    pub cp_tolerance: Option<f64>,
}

/// How a finding reads on the regression table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// Candidate is strictly worse than baseline on an ordered field.
    Regression,
    /// Candidate is strictly better — still gated (refresh the baseline
    /// to accept it), but labeled so the fix is obvious.
    Improvement,
    /// Non-ordered drift: schema, workload set, instance shape.
    Structural,
}

impl FindingKind {
    fn label(&self) -> &'static str {
        match self {
            FindingKind::Regression => "REGRESSED",
            FindingKind::Improvement => "improved (refresh baseline)",
            FindingKind::Structural => "structural drift",
        }
    }
}

/// One gated difference between baseline and candidate.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workload id, or `"<report>"` for report-level findings.
    pub workload: String,
    /// Dotted field path, e.g. `model.mpc_rounds`.
    pub field: String,
    /// Baseline value, rendered.
    pub baseline: String,
    /// Candidate value, rendered.
    pub candidate: String,
    /// Direction classification.
    pub kind: FindingKind,
}

/// Outcome of a comparison.
#[derive(Debug, Clone)]
pub struct DiffResult {
    /// Gated differences; empty means the gate passes.
    pub findings: Vec<Finding>,
    /// Workloads compared on both sides.
    pub compared: usize,
    /// Ungated observations worth a human glance: wall-clock drift above
    /// 25% and any critical-path drift (when no tolerance gates them).
    pub wall_notes: Vec<String>,
}

impl DiffResult {
    /// Whether the gate passes.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable rendering: verdict line, regression table (if any),
    /// a matrix-mismatch summary when entries are missing on either side,
    /// and wall-clock notes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.is_clean() {
            out.push_str(&format!(
                "bench-diff: OK — {} workloads, model costs and quality identical to baseline\n",
                self.compared
            ));
        } else {
            out.push_str(&format!(
                "bench-diff: FAIL — {} gated difference(s) across {} compared workload(s)\n",
                self.findings.len(),
                self.compared
            ));
            // A schema-version mismatch explains most other drift, so name
            // both versions up front instead of letting the reader infer
            // the cause from a matrix-mismatch table.
            if let Some(f) = self
                .findings
                .iter()
                .find(|f| f.workload == "<report>" && f.field == "schema_version")
            {
                out.push_str(&format!(
                    "error: schema versions differ — baseline is v{}, candidate is v{}; \
                     regenerate the stale report (cargo run --release --bin experiments -- \
                     bench --quick --out benchmarks/baseline.json) instead of comparing \
                     across schemas\n",
                    f.baseline, f.candidate
                ));
            }
            // Per-entry findings only; the "<report>" zero-overlap
            // pseudo-finding shares the field name but is not an entry.
            let missing = self
                .findings
                .iter()
                .filter(|f| f.field == "workload" && f.workload != "<report>")
                .count();
            if missing > 0 {
                out.push_str(&format!(
                    "error: {missing} workload/executor entr{} missing from one report — \
                     the matrix changed (new executor, tier, or family?); regenerate and \
                     commit the baseline to accept it\n",
                    if missing == 1 { "y is" } else { "ies are" }
                ));
            }
            let mut t = Table::new(
                "Gated differences vs baseline",
                &["workload", "field", "baseline", "candidate", "verdict"],
            );
            for f in &self.findings {
                t.push(vec![
                    f.workload.clone(),
                    f.field.clone(),
                    f.baseline.clone(),
                    f.candidate.clone(),
                    f.kind.label().to_string(),
                ]);
            }
            out.push_str(&t.render());
        }
        if !self.wall_notes.is_empty() {
            out.push_str("\nungated drift (wall-clock, critical path):\n");
            for note in &self.wall_notes {
                out.push_str(&format!("  {note}\n"));
            }
        }
        out
    }
}

fn push(
    findings: &mut Vec<Finding>,
    workload: &str,
    field: &str,
    baseline: impl ToString,
    candidate: impl ToString,
    kind: FindingKind,
) {
    findings.push(Finding {
        workload: workload.to_string(),
        field: field.to_string(),
        baseline: baseline.to_string(),
        candidate: candidate.to_string(),
        kind,
    });
}

/// Quality fields where larger is worse. `lp_bound`, `greedy_weight` and
/// `bye_weight` are properties of the instance and its baselines — the
/// MPC pipeline never touches them — so drift there is structural.
fn quality_larger_is_worse(field: &str) -> Option<bool> {
    match field {
        "cover_weight" | "cover_size" | "certified_ratio" | "ratio_vs_lp" => Some(true),
        "lp_bound" | "greedy_weight" | "bye_weight" => None,
        other => unreachable!("unknown quality field {other}"),
    }
}

fn diff_model(findings: &mut Vec<Finding>, id: &str, base: &ModelCosts, cand: &ModelCosts) {
    for &field in ModelCosts::FIELDS {
        let (b, c) = (base.field(field), cand.field(field));
        if b != c {
            // Cluster shape is derived from the instance and config, like
            // n/m — a change there is a different setup, not a better or
            // worse run of the same one. Every charged cost grows
            // monotonically with "worse".
            let kind = match field {
                "machines" | "memory_cap_words" => FindingKind::Structural,
                _ if c > b => FindingKind::Regression,
                _ => FindingKind::Improvement,
            };
            push(findings, id, &format!("model.{field}"), b, c, kind);
        }
    }
}

fn diff_quality(findings: &mut Vec<Finding>, id: &str, base: &Quality, cand: &Quality) {
    for &field in Quality::FIELDS {
        let (b, c) = (base.field(field), cand.field(field));
        // Exact equality: the harness is deterministic, and both sides
        // round-tripped through the same shortest-float serialization.
        if b != c {
            let kind = match quality_larger_is_worse(field) {
                Some(worse_up) => {
                    if worse_up == (c > b) {
                        FindingKind::Regression
                    } else {
                        FindingKind::Improvement
                    }
                }
                None => FindingKind::Structural,
            };
            push(
                findings,
                id,
                &format!("quality.{field}"),
                format!("{b:?}"),
                format!("{c:?}"),
                kind,
            );
        }
    }
}

/// Critical-path statistics: deterministic, but a property of the host
/// execution engine rather than the model, so they follow the wall-clock
/// policy — gated only under an explicit tolerance, with every drift
/// noted (determinism means any change is a real scheduling change).
fn diff_critical_path(
    findings: &mut Vec<Finding>,
    notes: &mut Vec<String>,
    id: &str,
    base: &CriticalPathStats,
    cand: &CriticalPathStats,
    tolerance: Option<f64>,
) {
    for &field in CriticalPathStats::FIELDS {
        let (b, c) = (base.field(field), cand.field(field));
        if b == c {
            continue;
        }
        let gated = match tolerance {
            Some(tol) => c as f64 > b as f64 * (1.0 + tol),
            None => false,
        };
        if gated {
            push(
                findings,
                id,
                &format!("critical_path.{field}"),
                b,
                format!("{c} (> +{:.0}%)", tolerance.unwrap_or(0.0) * 100.0),
                FindingKind::Regression,
            );
        } else {
            notes.push(format!("{id}: critical_path.{field} {b} -> {c}"));
        }
    }
}

/// Compares `candidate` against `baseline` under `opts`.
pub fn diff_reports(
    baseline: &BenchReport,
    candidate: &BenchReport,
    opts: DiffOptions,
) -> DiffResult {
    let mut findings = Vec::new();
    let mut wall_notes = Vec::new();

    if baseline.schema_version != candidate.schema_version {
        push(
            &mut findings,
            "<report>",
            "schema_version",
            baseline.schema_version,
            candidate.schema_version,
            FindingKind::Structural,
        );
    }
    if baseline.suite != candidate.suite {
        push(
            &mut findings,
            "<report>",
            "suite",
            &baseline.suite,
            &candidate.suite,
            FindingKind::Structural,
        );
    }

    let mut compared = 0usize;
    for b in &baseline.workloads {
        let Some(c) = candidate.workloads.iter().find(|c| c.id == b.id) else {
            // An absent entry is never clean: when the matrix grows an
            // axis (a new executor, tier, or family) the baseline must be
            // regenerated, not silently partially compared.
            push(
                &mut findings,
                &b.id,
                "workload",
                format!("present (executor {})", b.executor),
                "missing from candidate",
                FindingKind::Structural,
            );
            continue;
        };
        compared += 1;
        if b.executor != c.executor {
            push(
                &mut findings,
                &b.id,
                "executor",
                &b.executor,
                &c.executor,
                FindingKind::Structural,
            );
        }
        // Instance shape: if the built instance changed, every downstream
        // number is incomparable — report the cause, not just the symptoms.
        if b.n != c.n {
            push(&mut findings, &b.id, "n", b.n, c.n, FindingKind::Structural);
        }
        if b.m != c.m {
            push(&mut findings, &b.id, "m", b.m, c.m, FindingKind::Structural);
        }
        if b.epsilon != c.epsilon {
            push(
                &mut findings,
                &b.id,
                "epsilon",
                format!("{:?}", b.epsilon),
                format!("{:?}", c.epsilon),
                FindingKind::Structural,
            );
        }
        diff_model(&mut findings, &b.id, &b.model, &c.model);
        diff_quality(&mut findings, &b.id, &b.quality, &c.quality);
        diff_critical_path(
            &mut findings,
            &mut wall_notes,
            &b.id,
            &b.critical_path,
            &c.critical_path,
            opts.cp_tolerance,
        );

        // Wall clock: gated only on request, noted above 25% drift.
        let (bw, cw) = (b.wall_clock_s, c.wall_clock_s);
        if let Some(tol) = opts.wall_tolerance {
            if cw > bw * (1.0 + tol) {
                push(
                    &mut findings,
                    &b.id,
                    "wall_clock_s",
                    format!("{bw:.3}s"),
                    format!("{cw:.3}s (> +{:.0}%)", tol * 100.0),
                    FindingKind::Regression,
                );
            }
        }
        if bw > 0.0 {
            let drift = cw / bw - 1.0;
            if drift.abs() > 0.25 {
                wall_notes.push(format!(
                    "{}: wall {bw:.3}s -> {cw:.3}s ({:+.0}%)",
                    b.id,
                    drift * 100.0
                ));
            }
        }
    }
    for c in &candidate.workloads {
        if !baseline.workloads.iter().any(|b| b.id == c.id) {
            push(
                &mut findings,
                &c.id,
                "workload",
                "missing from baseline",
                format!("present (executor {})", c.executor),
                FindingKind::Structural,
            );
        }
    }
    if compared == 0 && (!baseline.workloads.is_empty() || !candidate.workloads.is_empty()) {
        push(
            &mut findings,
            "<report>",
            "workload",
            format!("{} workloads", baseline.workloads.len()),
            format!("{} workloads, zero overlap", candidate.workloads.len()),
            FindingKind::Structural,
        );
    }

    DiffResult {
        findings,
        compared,
        wall_notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::synthetic_report;

    #[test]
    fn identical_reports_are_clean() {
        let r = synthetic_report();
        let d = diff_reports(&r, &r.clone(), DiffOptions::default());
        assert!(d.is_clean(), "{:?}", d.findings);
        assert_eq!(d.compared, 2);
        assert!(d.render().contains("OK"));
    }

    #[test]
    fn rounds_regression_is_detected_and_named() {
        let base = synthetic_report();
        let mut cand = base.clone();
        cand.workloads[1].model.mpc_rounds += 9;
        let d = diff_reports(&base, &cand, DiffOptions::default());
        assert!(!d.is_clean());
        assert_eq!(d.findings.len(), 1);
        let f = &d.findings[0];
        assert_eq!(f.workload, "rmat-zipf-eps16-n64-roundcompress");
        assert_eq!(f.field, "model.mpc_rounds");
        assert_eq!(f.kind, FindingKind::Regression);
        let rendered = d.render();
        assert!(
            rendered.contains("rmat-zipf-eps16-n64-roundcompress"),
            "{rendered}"
        );
        assert!(rendered.contains("REGRESSED"), "{rendered}");
    }

    #[test]
    fn cluster_shape_drift_is_structural() {
        let base = synthetic_report();
        let mut cand = base.clone();
        cand.workloads[0].model.machines -= 1;
        let d = diff_reports(&base, &cand, DiffOptions::default());
        assert_eq!(d.findings.len(), 1);
        assert_eq!(d.findings[0].kind, FindingKind::Structural);
        assert_eq!(d.findings[0].field, "model.machines");
    }

    #[test]
    fn instance_baseline_drift_is_structural() {
        let base = synthetic_report();
        let mut cand = base.clone();
        cand.workloads[0].quality.greedy_weight += 1.0;
        cand.workloads[1].quality.lp_bound += 1.0;
        let d = diff_reports(&base, &cand, DiffOptions::default());
        assert_eq!(d.findings.len(), 2);
        assert!(d.findings.iter().all(|f| f.kind == FindingKind::Structural));
    }

    #[test]
    fn improvement_still_gates_but_reads_differently() {
        let base = synthetic_report();
        let mut cand = base.clone();
        cand.workloads[0].quality.cover_weight -= 1.0;
        let d = diff_reports(&base, &cand, DiffOptions::default());
        assert_eq!(d.findings.len(), 1);
        assert_eq!(d.findings[0].kind, FindingKind::Improvement);
        assert!(d.render().contains("refresh baseline"));
    }

    #[test]
    fn missing_and_new_workloads_are_structural_and_named_clearly() {
        let base = synthetic_report();
        let mut cand = base.clone();
        let mut extra = cand.workloads[0].clone();
        extra.id = "brand-new-workload".into();
        cand.workloads.remove(1);
        cand.workloads.push(extra);
        let d = diff_reports(&base, &cand, DiffOptions::default());
        assert_eq!(d.findings.len(), 2);
        assert!(d.findings.iter().all(|f| f.kind == FindingKind::Structural));
        assert_eq!(d.compared, 1);
        // Both directions are reported as a missing workload/executor
        // entry, and the rendering carries the matrix-mismatch error line.
        assert!(d
            .findings
            .iter()
            .any(|f| f.candidate == "missing from candidate"));
        assert!(d
            .findings
            .iter()
            .any(|f| f.baseline == "missing from baseline"));
        let rendered = d.render();
        assert!(
            rendered.contains("entries are missing from one report"),
            "{rendered}"
        );
        assert!(rendered.contains("regenerate"), "{rendered}");
    }

    #[test]
    fn grown_executor_axis_is_reported_not_treated_as_clean() {
        // The matrix-growth scenario the gate must catch: the candidate
        // grew a second executor per workload but the baseline predates
        // the axis. Every new entry is flagged; exit would be nonzero.
        let base = synthetic_report();
        let mut cand = base.clone();
        for w in base.workloads.iter() {
            let mut rc = w.clone();
            rc.id = format!("{}-other", w.id);
            rc.executor = "otherexec".into();
            cand.workloads.push(rc);
        }
        let d = diff_reports(&base, &cand, DiffOptions::default());
        assert!(!d.is_clean(), "grown matrix must not pass silently");
        assert_eq!(d.findings.len(), 2);
        for f in &d.findings {
            assert_eq!(f.kind, FindingKind::Structural);
            assert!(f.candidate.contains("executor otherexec"), "{f:?}");
        }
    }

    #[test]
    fn executor_rename_on_same_id_is_structural() {
        let base = synthetic_report();
        let mut cand = base.clone();
        cand.workloads[0].executor = "renamed".into();
        let d = diff_reports(&base, &cand, DiffOptions::default());
        assert_eq!(d.findings.len(), 1);
        assert_eq!(d.findings[0].field, "executor");
        assert_eq!(d.findings[0].kind, FindingKind::Structural);
    }

    #[test]
    fn zero_overlap_is_flagged_at_report_level() {
        let base = synthetic_report();
        let mut cand = base.clone();
        for w in &mut cand.workloads {
            w.id = format!("disjoint-{}", w.id);
        }
        let d = diff_reports(&base, &cand, DiffOptions::default());
        assert_eq!(d.compared, 0);
        assert!(d
            .findings
            .iter()
            .any(|f| f.workload == "<report>" && f.candidate.contains("zero overlap")));
    }

    #[test]
    fn wall_clock_only_gates_with_tolerance() {
        let base = synthetic_report();
        let mut cand = base.clone();
        cand.workloads[0].wall_clock_s = base.workloads[0].wall_clock_s * 10.0;
        let ungated = diff_reports(&base, &cand, DiffOptions::default());
        assert!(ungated.is_clean());
        assert_eq!(ungated.wall_notes.len(), 1, "big drift is still noted");
        let gated = diff_reports(
            &base,
            &cand,
            DiffOptions {
                wall_tolerance: Some(0.5),
                ..DiffOptions::default()
            },
        );
        assert!(!gated.is_clean());
        assert_eq!(gated.findings[0].field, "wall_clock_s");
    }

    #[test]
    fn critical_path_only_gates_with_tolerance() {
        let base = synthetic_report();
        let mut cand = base.clone();
        cand.workloads[0].critical_path.pipelined_makespan += 100;
        let ungated = diff_reports(&base, &cand, DiffOptions::default());
        assert!(ungated.is_clean(), "{:?}", ungated.findings);
        assert!(
            ungated
                .wall_notes
                .iter()
                .any(|n| n.contains("critical_path.pipelined_makespan")),
            "deterministic drift is always noted: {:?}",
            ungated.wall_notes
        );
        let gated = diff_reports(
            &base,
            &cand,
            DiffOptions {
                cp_tolerance: Some(0.1),
                ..DiffOptions::default()
            },
        );
        assert!(!gated.is_clean());
        assert_eq!(gated.findings[0].field, "critical_path.pipelined_makespan");
        assert_eq!(gated.findings[0].kind, FindingKind::Regression);
        // A shrink (improvement) never gates, only notes.
        let mut faster = base.clone();
        faster.workloads[0].critical_path.barrier_stall = 10;
        let d = diff_reports(
            &base,
            &faster,
            DiffOptions {
                cp_tolerance: Some(0.1),
                ..DiffOptions::default()
            },
        );
        assert!(d.is_clean(), "{:?}", d.findings);
        assert_eq!(d.wall_notes.len(), 1);
    }

    #[test]
    fn schema_version_mismatch_is_reported() {
        let base = synthetic_report();
        let mut cand = base.clone();
        cand.schema_version = 0;
        let d = diff_reports(&base, &cand, DiffOptions::default());
        assert!(d.findings.iter().any(|f| f.field == "schema_version"));
    }

    #[test]
    fn schema_version_mismatch_names_both_versions_up_front() {
        use crate::schema::SCHEMA_VERSION;
        let base = synthetic_report();
        let mut cand = base.clone();
        cand.schema_version = SCHEMA_VERSION - 1;
        let rendered = diff_reports(&base, &cand, DiffOptions::default()).render();
        assert!(
            rendered.contains(&format!(
                "baseline is v{SCHEMA_VERSION}, candidate is v{}",
                SCHEMA_VERSION - 1
            )),
            "{rendered}"
        );
        assert!(
            rendered.contains("regenerate the stale report"),
            "{rendered}"
        );
    }
}
