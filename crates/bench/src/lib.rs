//! `mwvc-bench` — the experiment harness of the reproduction.
//!
//! The paper is a theory contribution with no empirical section, so the
//! "tables and figures" this crate regenerates are the paper's
//! quantitative *claims*, one experiment per theorem/lemma (the full
//! mapping is the experiment index in `DESIGN.md`, results in
//! `EXPERIMENTS.md`). Run them all with:
//!
//! ```text
//! cargo run --release -p mwvc-bench --bin experiments -- all
//! ```
//!
//! or a single one with e.g. `-- e01`. Each experiment prints an aligned
//! text table (and can emit CSV) whose shape mirrors the claim being
//! tested.
//!
//! Besides the per-claim experiments, this crate hosts the repo's
//! canonical perf instrument: `experiments bench` drives the workload
//! matrix of [`harness`] through the audited distributed executor and
//! writes a schema-versioned `BENCH_core.json` ([`schema`]); the
//! `bench-diff` binary ([`diff`]) compares two such files and is what the
//! CI `perf-gate` job runs against `benchmarks/baseline.json`.

pub mod chaos;
pub mod diff;
pub mod experiments;
pub mod harness;
pub mod huge;
pub mod json;
pub mod schema;
pub mod table;
pub mod tracefmt;
pub mod workloads;

pub use table::Table;
