//! `experiments chaos` — the seeded fault-injection sweep.
//!
//! Runs both flagship executors under a fixed matrix of deterministic
//! [`FaultConfig`] cells (crash-restarts, dropped/duplicated deliveries,
//! straggler delays, a mixed storm) under **both** round schedulers and
//! asserts the recovery contract of `mpc_sim::checkpoint`:
//!
//! * every *handled* fault plan yields gated outputs — cover bits, dual
//!   certificate values, per-round stats, critical path, violations —
//!   **bit-identical** to the fault-free baseline,
//! * the unrecoverable cell (certain crash, zero replay budget) yields a
//!   typed [`ClusterError`] as a clean `Err`, never a panic,
//! * a synthetic spill cell (the flagship executors never spill at bench
//!   sizes) drives transient spill-I/O faults through the bounded retry
//!   path of `SpillFile` and checks the read-back survives.
//!
//! Everything is deterministic: fault seeds derive from the cell name by
//! FNV-1a, so a run either always passes or always fails. The CI chaos
//! job additionally runs the suite under the `CHAOS_MUTATE=skip-retry`
//! and `CHAOS_MUTATE=stale-checkpoint` seeded mutations and requires the
//! sweep to **fail** — proving the assertions can actually see a broken
//! retry loop or a stale checkpoint restore.

use crate::harness::ExecutorKind;
use crate::table::Table;
use mpc_sim::{
    Cluster, ClusterError, FaultConfig, FaultStats, MachineCtx, MpcConfig, RoundScheduler, Words,
};
use mwvc_core::mpc::{DistributedExecutor, Executor, ExecutorOutcome, MpcMwvcConfig};
use mwvc_graph::{GraphPreset, WeightModel, WeightedGraph};
use mwvc_roundcompress::{RoundCompressConfig, RoundCompressExecutor};

/// Base seed of the sweep; per-cell fault seeds derive from it and the
/// cell/executor/scheduler labels, so adding a cell never reshuffles the
/// fault coins of the others.
pub const CHAOS_BASE_SEED: u64 = 0xc4a05;

/// What a cell's fault plan is expected to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    /// The recovery engine must absorb every injected fault: `Ok`, gated
    /// outputs bit-identical to fault-free, and at least one fault
    /// actually injected (a cell that never fires tests nothing).
    Recovered,
    /// The plan exceeds the recovery budget by construction: a typed
    /// [`ClusterError`] `Err`, never a panic.
    TypedError,
}

/// One cell of the fault matrix.
struct ChaosCell {
    name: &'static str,
    faults: FaultConfig,
    expect: Expect,
}

/// The executor-sweep fault matrix. Rates are chosen high enough that
/// every recoverable cell deterministically injects at least one fault
/// on the chaos instances (asserted per run).
fn cells() -> Vec<ChaosCell> {
    let base = FaultConfig::none();
    vec![
        ChaosCell {
            name: "crashes",
            faults: FaultConfig {
                crash_rate: 0.08,
                checkpoint_every: 2,
                ..base
            },
            expect: Expect::Recovered,
        },
        ChaosCell {
            name: "delivery",
            faults: FaultConfig {
                drop_rate: 0.10,
                dup_rate: 0.10,
                ..base
            },
            expect: Expect::Recovered,
        },
        ChaosCell {
            name: "stragglers",
            faults: FaultConfig {
                straggler_rate: 0.30,
                ..base
            },
            expect: Expect::Recovered,
        },
        ChaosCell {
            name: "mixed",
            faults: FaultConfig {
                crash_rate: 0.05,
                drop_rate: 0.08,
                dup_rate: 0.08,
                straggler_rate: 0.20,
                checkpoint_every: 2,
                ..base
            },
            expect: Expect::Recovered,
        },
        ChaosCell {
            name: "unrecoverable",
            faults: FaultConfig {
                crash_rate: 1.0,
                checkpoint_every: 1,
                max_replays: 0,
                ..base
            },
            expect: Expect::TypedError,
        },
    ]
}

/// FNV-1a of a string — stable fault-seed derivation from cell labels.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The chaos instances: small enough that the full sweep stays in CI
/// budget, large enough that every executor runs a nontrivial number of
/// rounds across a real machine fleet.
fn instances(quick: bool) -> Vec<(String, WeightedGraph)> {
    let tiers: &[usize] = if quick { &[256] } else { &[256, 1024] };
    tiers
        .iter()
        .map(|&n| {
            let preset = GraphPreset::Gnm { n, avg_degree: 16 };
            let seed = CHAOS_BASE_SEED ^ fnv1a(&format!("gnm-n{n}"));
            let g = preset.build(seed);
            let weights = WeightModel::Uniform { lo: 1.0, hi: 10.0 }.sample(&g, seed ^ 0x5eed);
            (format!("gnm-uniform-n{n}"), WeightedGraph::new(g, weights))
        })
        .collect()
}

/// Builds an executor with a fault plan injected into its cluster config
/// (the harness [`ExecutorKind::build`] is the fault-free form).
fn build_executor(
    kind: ExecutorKind,
    epsilon: f64,
    seed: u64,
    scheduler: RoundScheduler,
    faults: FaultConfig,
) -> Box<dyn Executor> {
    match kind {
        ExecutorKind::Distributed => Box::new(DistributedExecutor::new(
            MpcMwvcConfig::practical(epsilon, seed)
                .with_scheduler(scheduler)
                .with_faults(faults),
        )),
        ExecutorKind::RoundCompress => Box::new(RoundCompressExecutor::new(
            RoundCompressConfig::practical(epsilon, seed)
                .with_scheduler(scheduler)
                .with_faults(faults),
        )),
    }
}

/// First gated-output divergence between a faulted outcome and the
/// fault-free baseline, or `None` when the chaos contract holds. The
/// comparison deliberately excludes `trace.faults` and the fault events
/// (those *must* differ) — everything the perf gate and the quality
/// report consume has to match bit for bit.
fn gated_mismatch(base: &ExecutorOutcome, got: &ExecutorOutcome) -> Option<&'static str> {
    if got.solution.cover != base.solution.cover {
        return Some("cover diverged");
    }
    if got.solution.certificate != base.solution.certificate {
        return Some("dual certificate diverged");
    }
    if got.cost.phases != base.cost.phases || got.cost.mpc_rounds != base.cost.mpc_rounds {
        return Some("phase/round counts diverged");
    }
    if got.trace.rounds != base.trace.rounds {
        return Some("per-round stats diverged");
    }
    if got.trace.critical_path != base.trace.critical_path {
        return Some("critical path diverged");
    }
    if got.trace.violations != base.trace.violations {
        return Some("violations diverged");
    }
    None
}

/// Per-machine state of the synthetic spill cell: the words read back
/// from the spill file, compared bit for bit against the fault-free run.
#[derive(Clone, Debug, Default, PartialEq)]
struct SpillProbe {
    read_back: Vec<u64>,
}

impl Words for SpillProbe {
    fn words(&self) -> usize {
        1 + self.read_back.len()
    }
}

const SPILL_BATCH: usize = 64;

/// Drives one spill write/read cycle per machine through the audited
/// cluster under `faults`. Injected transient spill-I/O errors must be
/// absorbed by the bounded retry path; exhaustion (or the `skip-retry`
/// mutation) surfaces as a typed [`ClusterError::SpillIo`].
fn run_spill_probe(faults: FaultConfig) -> Result<(Vec<SpillProbe>, FaultStats), ClusterError> {
    let cfg = MpcConfig::new(4, 10_000).with_faults(faults);
    let mut c: Cluster<SpillProbe, u64> = Cluster::new(cfg, |_| SpillProbe::default());
    c.try_round(
        "spill-write",
        |ctx: &mut MachineCtx<u64>, _state, _inbox| {
            let base = (ctx.id as u64) << 32;
            let batch: Vec<u64> = (0..SPILL_BATCH as u64)
                .map(|k| base | k.wrapping_mul(0x9e37_79b9))
                .collect();
            // Injected transient errors retry inside write_words; a genuine
            // or exhausted error latches and surfaces after the round.
            let _ = ctx.spill().write_words(&batch);
            ctx.spill().rewind();
        },
    )?;
    c.try_round("spill-read", |ctx: &mut MachineCtx<u64>, state, _inbox| {
        let mut buf = vec![0u64; SPILL_BATCH];
        let got = ctx.spill().read_words(&mut buf).unwrap_or(0);
        buf.truncate(got);
        state.read_back = buf;
    })?;
    Ok((c.states().to_vec(), c.trace().faults))
}

/// Outcome of one full sweep: the rendered table plus every contract
/// violation found (empty means the chaos gate passes).
pub struct ChaosReport {
    /// One row per (cell, executor, scheduler) run.
    pub table: Table,
    /// Number of faulted executor/cluster runs performed.
    pub runs: usize,
    /// Human-readable contract violations, in discovery order.
    pub failures: Vec<String>,
}

/// Runs the full chaos sweep. `quick` restricts to the CI-sized
/// instance tier.
pub fn run_chaos(quick: bool) -> ChaosReport {
    let mut table = Table::new(
        format!(
            "CHAOS fault-injection sweep ({} tier, seed {CHAOS_BASE_SEED:#x})",
            if quick { "quick" } else { "full" }
        ),
        &[
            "cell",
            "executor",
            "sched",
            "outcome",
            "injected",
            "replays",
            "ckpt words",
            "retries",
            "verdict",
        ],
    );
    let mut runs = 0usize;
    let mut failures = Vec::new();
    let sched_label = |s: RoundScheduler| match s {
        RoundScheduler::Barrier => "barrier",
        RoundScheduler::Pipelined => "pipelined",
    };

    for (instance_id, wg) in instances(quick) {
        for kind in ExecutorKind::all() {
            let algo_seed = CHAOS_BASE_SEED ^ fnv1a(&format!("{instance_id}-{}", kind.label()));
            let baseline = match build_executor(
                kind,
                0.25,
                algo_seed,
                RoundScheduler::Barrier,
                FaultConfig::none(),
            )
            .try_run(&wg)
            {
                Ok(out) => out,
                Err(e) => {
                    failures.push(format!(
                        "{instance_id}/{}: fault-free baseline errored: {e}",
                        kind.label()
                    ));
                    continue;
                }
            };
            for cell in cells() {
                for scheduler in [RoundScheduler::Barrier, RoundScheduler::Pipelined] {
                    let label = format!(
                        "{instance_id}/{}/{}/{}",
                        cell.name,
                        kind.label(),
                        sched_label(scheduler)
                    );
                    let faults = cell.faults.with_seed(CHAOS_BASE_SEED ^ fnv1a(&label));
                    let exec = build_executor(kind, 0.25, algo_seed, scheduler, faults);
                    runs += 1;
                    // Panics are contract violations too ("unrecoverable
                    // faults are clean typed errors, never panics") — and
                    // catching them keeps the mutation gates exiting 1,
                    // not crashing.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        exec.try_run(&wg)
                    }));
                    let (outcome_label, stats, failure) = match result {
                        Err(_) => (
                            "panic",
                            FaultStats::default(),
                            Some("panicked; recovery must fail as a typed error".to_string()),
                        ),
                        Ok(Ok(out)) => {
                            let stats = out.trace.faults;
                            let failure = match cell.expect {
                                Expect::TypedError => {
                                    Some("expected a typed error, got Ok".to_string())
                                }
                                Expect::Recovered => {
                                    if stats.injected == 0 {
                                        Some("cell injected no faults (dead cell)".to_string())
                                    } else {
                                        gated_mismatch(&baseline, &out).map(str::to_string)
                                    }
                                }
                            };
                            ("ok", stats, failure)
                        }
                        Ok(Err(e)) => {
                            let failure = match cell.expect {
                                Expect::TypedError => None,
                                Expect::Recovered => Some(format!("recoverable plan errored: {e}")),
                            };
                            ("err", FaultStats::default(), failure)
                        }
                    };
                    let failed = failure.is_some();
                    if let Some(f) = failure {
                        failures.push(format!("{label}: {f}"));
                    }
                    table.push(vec![
                        format!("{instance_id}/{}", cell.name),
                        kind.label().to_string(),
                        sched_label(scheduler).to_string(),
                        outcome_label.to_string(),
                        stats.injected.to_string(),
                        stats.replayed_rounds.to_string(),
                        stats.checkpoint_words.to_string(),
                        stats.retries.to_string(),
                        if failed { "FAIL" } else { "pass" }.to_string(),
                    ]);
                }
            }
        }
    }

    // The synthetic spill cell: fault-free read-back vs the retry path.
    runs += 1;
    let spill_row = match run_spill_probe(FaultConfig::none()) {
        Err(e) => {
            failures.push(format!("spill-synthetic: fault-free probe errored: {e}"));
            None
        }
        Ok((clean, _)) => {
            let faults = FaultConfig {
                spill_io_rate: 0.30,
                ..FaultConfig::none()
            }
            .with_seed(CHAOS_BASE_SEED ^ fnv1a("spill-synthetic"));
            match std::panic::catch_unwind(|| run_spill_probe(faults)) {
                Ok(Ok((faulted, stats))) => {
                    if faulted != clean {
                        failures.push("spill-synthetic: read-back diverged under retries".into());
                    } else if stats.retries == 0 {
                        failures.push("spill-synthetic: no retries exercised (dead cell)".into());
                    }
                    Some(("ok", stats))
                }
                Ok(Err(e)) => {
                    failures.push(format!("spill-synthetic: retry path errored: {e}"));
                    Some(("err", FaultStats::default()))
                }
                Err(_) => {
                    failures.push("spill-synthetic: panicked in the retry path".into());
                    Some(("panic", FaultStats::default()))
                }
            }
        }
    };
    if let Some((outcome_label, stats)) = spill_row {
        let failed = failures.iter().any(|f| f.starts_with("spill-synthetic"));
        table.push(vec![
            "spill-synthetic".to_string(),
            "mpc_sim".to_string(),
            "barrier".to_string(),
            outcome_label.to_string(),
            stats.injected.to_string(),
            stats.replayed_rounds.to_string(),
            stats.checkpoint_words.to_string(),
            stats.retries.to_string(),
            if failed { "FAIL" } else { "pass" }.to_string(),
        ]);
    }

    ChaosReport {
        table,
        runs,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spill_probe_reads_back_what_it_wrote() {
        let (states, stats) = run_spill_probe(FaultConfig::none()).unwrap();
        assert_eq!(states.len(), 4);
        for (i, s) in states.iter().enumerate() {
            assert_eq!(s.read_back.len(), SPILL_BATCH);
            assert_eq!(s.read_back[0], (i as u64) << 32);
        }
        assert_eq!(stats, FaultStats::default());
    }

    #[test]
    fn cell_seeds_are_distinct_and_stable() {
        let a = fnv1a("crashes/distributed/barrier");
        assert_eq!(a, fnv1a("crashes/distributed/barrier"));
        assert_ne!(a, fnv1a("crashes/distributed/pipelined"));
        assert_ne!(a, fnv1a("mixed/distributed/barrier"));
    }

    /// The quick sweep passes end to end — the same invariant the CI
    /// chaos job enforces (and the seeded mutations must break).
    #[test]
    fn quick_sweep_passes_clean() {
        if std::env::var_os("CHAOS_MUTATE").is_some() {
            return; // under a mutation the sweep *should* fail
        }
        let report = run_chaos(true);
        assert!(
            report.failures.is_empty(),
            "chaos failures:\n{}",
            report.failures.join("\n")
        );
        assert!(
            report.runs >= 21,
            "expected the full matrix, got {}",
            report.runs
        );
    }
}
