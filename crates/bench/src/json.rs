//! Minimal JSON tree with a deterministic writer and a strict parser.
//!
//! The vendored `serde` stand-in has no JSON backend, and the benchmark
//! gate needs *byte-stable* output anyway (the golden-file test pins the
//! exact serialization), so the harness carries its own ~200-line JSON:
//!
//! * [`Json`] — a value tree whose objects preserve insertion order, so
//!   field ordering is part of the schema and survives round-trips,
//! * [`Json::render`] — pretty printer with 2-space indent; floats are
//!   written in Rust's shortest-roundtrip `{:?}` form, so equal values
//!   always serialize to equal bytes,
//! * [`Json::parse`] — a strict recursive-descent parser (rejects
//!   trailing garbage, unknown escapes and non-finite numbers).

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part or exponent in its source form.
    Int(i64),
    /// Any other number (always finite).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Integer view (`Int` only — floats do not silently truncate).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric view (`Int` widens to `f64`).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(v) => Some(v as f64),
            Json::Num(v) => Some(v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders the value as pretty-printed JSON (2-space indent, trailing
    /// newline). Deterministic: equal trees produce equal bytes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders the value on a single line, no whitespace, no trailing
    /// newline — one JSONL record. Deterministic like [`Json::render`];
    /// [`Json::parse`] reads either form back identically.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null | Json::Bool(_) | Json::Int(_) | Json::Num(_) | Json::Str(_) => {
                self.write(out, 0)
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                assert!(v.is_finite(), "JSON cannot represent {v}");
                // Shortest-roundtrip form; always carries a '.' or an 'e',
                // so the parser reads it back as Num, not Int.
                let s = format!("{v:?}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// anything else is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'u') => {
                            let code = self.hex4(self.pos + 1)?;
                            self.pos += 4;
                            let c = if (0xd800..0xdc00).contains(&code) {
                                // High surrogate: a standard encoder may
                                // escape a non-BMP char as a \uD8xx\uDCxx
                                // pair, which must decode to one char.
                                if self.bytes.get(self.pos + 1..self.pos + 3)
                                    != Some(b"\\u".as_slice())
                                {
                                    return Err("lone high surrogate in \\u escape".into());
                                }
                                let low = self.hex4(self.pos + 3)?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err("invalid low surrogate in \\u escape".into());
                                }
                                self.pos += 6;
                                0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00)
                            } else {
                                code
                            };
                            s.push(char::from_u32(c).ok_or("bad \\u code point")?);
                        }
                        other => {
                            return Err(format!("unknown escape {:?}", other.map(|c| c as char)))
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn hex4(&self, at: usize) -> Result<u32, String> {
        let hex = self.bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
        u32::from_str_radix(std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?, 16)
            .map_err(|e| format!("bad \\u escape: {e}"))
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|e| format!("bad number {text}: {e}"))?;
            if !v.is_finite() {
                return Err(format!("non-finite number {text}"));
            }
            Ok(Json::Num(v))
        } else {
            let v: i64 = text
                .parse()
                .map_err(|e| format!("bad number {text}: {e}"))?;
            Ok(Json::Int(v))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering_is_single_line_and_roundtrips() {
        let doc = Json::Obj(vec![
            ("kind".into(), Json::Str("SpillWords".into())),
            ("value".into(), Json::Int(42)),
            ("f".into(), Json::Num(2.0)),
            (
                "arr".into(),
                Json::Arr(vec![Json::Int(1), Json::Null, Json::Bool(true)]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let line = doc.render_compact();
        assert!(!line.contains('\n'), "JSONL record must be one line");
        assert_eq!(
            line,
            r#"{"kind":"SpillWords","value":42,"f":2.0,"arr":[1,null,true],"empty":{}}"#
        );
        assert_eq!(Json::parse(&line).expect("compact form parses"), doc);
    }

    #[test]
    fn roundtrip_preserves_order_and_values() {
        let doc = Json::Obj(vec![
            ("z".into(), Json::Int(3)),
            ("a".into(), Json::Num(0.0625)),
            (
                "list".into(),
                Json::Arr(vec![Json::Bool(true), Json::Null, Json::Str("x\"y".into())]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).expect("parse own output");
        assert_eq!(doc, back);
        // Field order survives: "z" serializes before "a".
        assert!(text.find("\"z\"").unwrap() < text.find("\"a\"").unwrap());
    }

    #[test]
    fn float_rendering_roundtrips_bit_exactly() {
        for v in [0.1, 1.0 / 3.0, 6.0, 1e-30, 123456.789, 0.0625] {
            let text = Json::Num(v).render();
            match Json::parse(&text).unwrap() {
                Json::Num(back) => assert_eq!(back.to_bits(), v.to_bits(), "{text}"),
                other => panic!("expected Num, got {other:?} from {text}"),
            }
        }
    }

    #[test]
    fn whole_floats_keep_a_fraction_marker() {
        assert_eq!(Json::Num(6.0).render(), "6.0\n");
        assert_eq!(Json::Int(6).render(), "6\n");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("1e999").is_err(), "infinite float rejected");
    }

    #[test]
    fn accessors() {
        let doc = Json::parse("{\"n\": 3, \"x\": 1.5, \"s\": \"v\", \"a\": [1]}").unwrap();
        assert_eq!(doc.get("n").unwrap().as_i64(), Some(3));
        assert_eq!(doc.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(doc.get("x").unwrap().as_f64(), Some(1.5));
        assert_eq!(
            doc.get("x").unwrap().as_i64(),
            None,
            "floats don't truncate"
        );
        assert_eq!(doc.get("s").unwrap().as_str(), Some("v"));
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn surrogate_pairs_decode() {
        // A standard ASCII-escaping encoder writes non-BMP chars as pairs.
        let parsed = Json::parse("\"\\ud83d\\ude00 ok \\u00e9\"").unwrap();
        assert_eq!(parsed.as_str(), Some("\u{1f600} ok é"));
        // Lone or malformed surrogates stay rejected.
        assert!(Json::parse("\"\\ud83d\"").is_err());
        assert!(Json::parse("\"\\ud83d\\u0041\"").is_err());
        assert!(Json::parse("\"\\udc00\"").is_err(), "lone low surrogate");
    }

    #[test]
    fn escapes_roundtrip() {
        let s = "line1\nline2\ttab \"quoted\" back\\slash \u{1}control";
        let text = Json::Str(s.into()).render();
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(s));
    }
}
