//! Named instance families shared by the experiments.

use mwvc_graph::generators::{chung_lu, gnm, planted_cover, rmat, star_composite, RmatParams};
use mwvc_graph::{WeightModel, WeightedGraph};

/// An Erdős–Rényi instance with exactly average degree `d` and the given
/// weight model.
pub fn er_instance(n: usize, d: usize, model: WeightModel, seed: u64) -> WeightedGraph {
    let g = gnm(n, n * d / 2, seed);
    let w = model.sample(&g, seed ^ 0xabcd);
    WeightedGraph::new(g, w)
}

/// A Chung–Lu power-law instance (`β = 2.3`).
pub fn power_law_instance(n: usize, d: f64, model: WeightModel, seed: u64) -> WeightedGraph {
    let g = chung_lu(n, 2.3, d, seed);
    let w = model.sample(&g, seed ^ 0xbeef);
    WeightedGraph::new(g, w)
}

/// An R-MAT instance (Graph500-style skew).
pub fn rmat_instance(
    scale: u32,
    edge_factor: usize,
    model: WeightModel,
    seed: u64,
) -> WeightedGraph {
    let g = rmat(scale, edge_factor, RmatParams::default(), seed);
    let w = model.sample(&g, seed ^ 0xfeed);
    WeightedGraph::new(g, w)
}

/// A hub-skewed instance where `Δ/d` is tunable: hubs with private leaves
/// over Erdős–Rényi background noise.
pub fn skewed_instance(
    hubs: usize,
    leaves_per_hub: usize,
    background_p: f64,
    model: WeightModel,
    seed: u64,
) -> WeightedGraph {
    let g = star_composite(hubs, leaves_per_hub, background_p, seed);
    let w = model.sample(&g, seed ^ 0x051e_d00d);
    WeightedGraph::new(g, w)
}

/// A planted instance wrapped with its known optimum.
pub fn planted_instance(hubs: usize, seed: u64) -> (WeightedGraph, f64) {
    let inst = planted_cover(hubs, 3, 0.1, 10.0, seed);
    (inst.graph, inst.opt_weight)
}

/// The decision-boundary instance of experiment E12: a random-regular
/// "core" (degree `core_deg`, weight `core_weight`) where every core
/// vertex also carries `leaves` private leaves of tiny weight `leaf_w`.
///
/// Inside a phase the induced `V^high` subgraph is exactly the core, and
/// every core vertex follows the *same* dual trajectory
/// `y_t/w = (core_deg / d(v)) · (1-ε)^{-t}` (the leaves only dilute the
/// initialization denominator `d(v) = core_deg + leaves`), so the whole
/// population sweeps the freeze-threshold window together — the
/// boundary-crowding situation the paper's random thresholds defend
/// against.
pub fn boundary_instance(
    core: usize,
    core_deg: usize,
    leaves: usize,
    leaf_w: f64,
    core_weight: f64,
    seed: u64,
) -> WeightedGraph {
    use mwvc_graph::{GraphBuilder, VertexWeights};
    let core_graph = mwvc_graph::generators::random_regular(core, core_deg, seed);
    let n = core + core * leaves;
    let mut b = GraphBuilder::new(n);
    for e in core_graph.edges() {
        b.add_edge(e.u(), e.v());
    }
    for c in 0..core {
        for l in 0..leaves {
            b.add_edge(c as u32, (core + c * leaves + l) as u32);
        }
    }
    let mut w = vec![leaf_w; n];
    for x in w.iter_mut().take(core) {
        *x = core_weight;
    }
    WeightedGraph::new(b.build(), VertexWeights::from_vec(w))
}

/// The weight models exercised by the robustness experiments.
pub fn weight_models() -> Vec<(&'static str, WeightModel)> {
    vec![
        ("constant", WeightModel::Constant(1.0)),
        ("uniform", WeightModel::Uniform { lo: 1.0, hi: 10.0 }),
        ("exponential", WeightModel::Exponential { mean: 5.0 }),
        (
            "zipf",
            WeightModel::Zipf {
                exponent: 1.2,
                scale: 100.0,
            },
        ),
        (
            "deg-prop",
            WeightModel::DegreeProportional {
                base: 1.0,
                slope: 0.5,
            },
        ),
        ("deg-inv", WeightModel::DegreeInverse { scale: 50.0 }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_instance_has_requested_degree() {
        let wg = er_instance(1000, 16, WeightModel::Constant(1.0), 3);
        assert_eq!(wg.num_edges(), 8000);
    }

    #[test]
    fn skewed_instance_has_high_skew() {
        let wg = skewed_instance(8, 500, 0.0005, WeightModel::Constant(1.0), 5);
        let stats = mwvc_graph::stats::DegreeStats::of(&wg.graph);
        assert!(stats.skew() > 20.0, "skew = {}", stats.skew());
    }

    #[test]
    fn planted_instance_reports_opt() {
        let (wg, opt) = planted_instance(50, 7);
        assert!(opt > 0.0);
        assert!(wg.num_vertices() == 50 * 4);
    }

    #[test]
    fn weight_models_all_sample() {
        let wg = er_instance(100, 8, WeightModel::Constant(1.0), 1);
        for (name, model) in weight_models() {
            let w = model.sample(&wg.graph, 2);
            assert!(
                w.iter().all(|x| x > 0.0),
                "{name} produced nonpositive weight"
            );
        }
    }
}
