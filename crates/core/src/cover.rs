//! Vertex cover representation and verification.

use mwvc_graph::{Graph, VertexId, WeightedGraph};
use serde::{Deserialize, Serialize};

/// A vertex cover: a set of vertices touching every edge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VertexCover {
    vertices: Vec<VertexId>,
    /// Membership bitmap indexed by vertex id.
    membership: Vec<bool>,
}

impl VertexCover {
    /// Builds a cover from a vertex list (deduplicated, sorted) for a graph
    /// on `n` vertices.
    pub fn new(n: usize, mut vertices: Vec<VertexId>) -> Self {
        vertices.sort_unstable();
        vertices.dedup();
        let mut membership = vec![false; n];
        for &v in &vertices {
            assert!((v as usize) < n, "cover vertex {v} out of range");
            membership[v as usize] = true;
        }
        Self {
            vertices,
            membership,
        }
    }

    /// Builds a cover from a membership bitmap.
    pub fn from_membership(membership: Vec<bool>) -> Self {
        let vertices = membership
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(v, _)| v as VertexId)
            .collect();
        Self {
            vertices,
            membership,
        }
    }

    /// The cover vertices, ascending.
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Number of vertices in the cover.
    pub fn size(&self) -> usize {
        self.vertices.len()
    }

    /// Whether `v` is in the cover.
    pub fn contains(&self, v: VertexId) -> bool {
        self.membership[v as usize]
    }

    /// Total weight of the cover.
    pub fn weight(&self, wg: &WeightedGraph) -> f64 {
        self.vertices.iter().map(|&v| wg.weights[v]).sum()
    }

    /// Checks that every edge of `g` has an endpoint in the cover; returns
    /// the first uncovered edge otherwise.
    pub fn verify(&self, g: &Graph) -> Result<(), mwvc_graph::Edge> {
        for e in g.edges() {
            if !self.contains(e.u()) && !self.contains(e.v()) {
                return Err(e);
            }
        }
        Ok(())
    }

    /// Whether the cover is *minimal*: no vertex can be removed while
    /// still covering all edges. (Approximation algorithms do not promise
    /// minimality; this is an analysis helper.)
    pub fn is_minimal(&self, g: &Graph) -> bool {
        self.vertices.iter().all(|&v| {
            // v is removable iff every incident edge is covered by the
            // other endpoint.
            !g.neighbors(v).iter().all(|&u| self.contains(u))
        })
    }

    /// Greedily removes redundant vertices (heaviest first) while the set
    /// remains a cover. Any algorithm's output can be post-processed this
    /// way; the paper's guarantee applies before pruning, pruning only
    /// improves it.
    pub fn pruned(&self, wg: &WeightedGraph) -> VertexCover {
        let g = &wg.graph;
        let mut membership = self.membership.clone();
        let mut order: Vec<VertexId> = self.vertices.clone();
        order.sort_by(|&a, &b| {
            wg.weights[b]
                .partial_cmp(&wg.weights[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for v in order {
            let removable = g.neighbors(v).iter().all(|&u| membership[u as usize]);
            if removable {
                membership[v as usize] = false;
            }
        }
        VertexCover::from_membership(membership)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwvc_graph::generators::{clique, path, star};
    use mwvc_graph::{VertexWeights, WeightedGraph};

    #[test]
    fn star_center_covers() {
        let g = star(6);
        let c = VertexCover::new(6, vec![0]);
        assert!(c.verify(&g).is_ok());
        assert_eq!(c.size(), 1);
        assert!(c.contains(0) && !c.contains(3));
    }

    #[test]
    fn uncovered_edge_reported() {
        let g = path(4); // 0-1-2-3
        let c = VertexCover::new(4, vec![1]);
        let missing = c.verify(&g).unwrap_err();
        assert_eq!((missing.u(), missing.v()), (2, 3));
    }

    #[test]
    fn dedup_and_weight() {
        let g = path(3);
        let wg = WeightedGraph::new(g, VertexWeights::from_vec(vec![1.0, 5.0, 2.0]));
        let c = VertexCover::new(3, vec![1, 1, 2]);
        assert_eq!(c.size(), 2);
        assert_eq!(c.weight(&wg), 7.0);
    }

    #[test]
    fn minimality_detection() {
        let g = path(4);
        assert!(VertexCover::new(4, vec![1, 2]).is_minimal(&g));
        assert!(!VertexCover::new(4, vec![0, 1, 2]).is_minimal(&g));
    }

    #[test]
    fn pruning_removes_redundant_heavy_vertices() {
        let g = clique(3);
        let wg = WeightedGraph::new(g, VertexWeights::from_vec(vec![1.0, 1.0, 10.0]));
        // All three vertices cover K3; any two suffice; pruning should
        // drop the heavy one.
        let c = VertexCover::new(3, vec![0, 1, 2]);
        let p = c.pruned(&wg);
        assert!(p.verify(&wg.graph).is_ok());
        assert_eq!(p.size(), 2);
        assert!(!p.contains(2));
        assert!(p.weight(&wg) < c.weight(&wg));
    }

    #[test]
    fn pruning_keeps_valid_covers_valid() {
        // Light center, heavy leaves: heaviest-first pruning drops all
        // leaves and keeps the center.
        let g = star(8);
        let mut w = vec![5.0; 8];
        w[0] = 1.0;
        let wg = WeightedGraph::new(g, VertexWeights::from_vec(w));
        let all = VertexCover::new(8, (0..8).collect());
        let p = all.pruned(&wg);
        assert!(p.verify(&wg.graph).is_ok());
        assert_eq!(p.vertices(), &[0], "star prunes to its light center");
        assert!(p.is_minimal(&wg.graph));
    }

    #[test]
    fn membership_roundtrip() {
        let c = VertexCover::from_membership(vec![true, false, true]);
        assert_eq!(c.vertices(), &[0, 2]);
        let c2 = VertexCover::new(3, vec![2, 0]);
        assert_eq!(c, c2);
    }
}
