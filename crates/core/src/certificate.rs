//! Dual certificates: fractional matchings and the lower bounds they
//! witness (the paper's Figure 1 LP and Lemma 3.2 weak duality).
//!
//! A vector `{x_e ≥ 0}` is a *fractional matching* when
//! `Σ_{e∋v} x_e ≤ w(v)` for every vertex. Weak LP duality gives
//! `OPT ≥ Σ_e x_e`, so any fractional matching certifies a lower bound on
//! the optimal cover weight — and therefore an upper bound on the
//! approximation ratio of any concrete cover, with no exact solver in the
//! loop.

use mwvc_graph::{EdgeIndex, VertexId, WeightedGraph};
use serde::{Deserialize, Serialize};

/// Per-edge dual values together with the bound they certify.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DualCertificate {
    /// `x[eid]` is the dual value of edge `eid` (in [`EdgeIndex`] order).
    pub x: Vec<f64>,
}

impl DualCertificate {
    /// Wraps explicit dual values.
    pub fn new(x: Vec<f64>) -> Self {
        Self { x }
    }

    /// `Σ_e x_e`, the raw dual objective.
    pub fn value(&self) -> f64 {
        self.x.iter().sum()
    }

    /// Total incident dual weight per vertex: `y_v = Σ_{e∋v} x_e`.
    /// Summed in ascending edge-id order for cross-implementation
    /// reproducibility.
    pub fn incident_sums(&self, wg: &WeightedGraph, eidx: &EdgeIndex) -> Vec<f64> {
        let mut y = vec![0.0f64; wg.num_vertices()];
        for (eid, &xv) in self.x.iter().enumerate() {
            let e = eidx.edge(eid as u32);
            y[e.u() as usize] += xv;
            y[e.v() as usize] += xv;
        }
        y
    }

    /// The worst relative violation of the dual constraints:
    /// `max_v y_v / w(v)` (1 or less means feasible). Useful because the
    /// MPC algorithm guarantees only `y_v ≤ (1+6ε)·w(v)` (Theorem 4.7) —
    /// the certificate is rescaled by this factor to become feasible.
    pub fn feasibility_factor(&self, wg: &WeightedGraph, eidx: &EdgeIndex) -> f64 {
        let y = self.incident_sums(wg, eidx);
        (0..wg.num_vertices() as VertexId)
            .map(|v| y[v as usize] / wg.weights[v])
            .fold(0.0, f64::max)
    }

    /// A certified lower bound on OPT: the dual objective of the matching
    /// rescaled into feasibility, `Σx / max(1, feasibility_factor)`.
    pub fn lower_bound(&self, wg: &WeightedGraph, eidx: &EdgeIndex) -> f64 {
        let f = self.feasibility_factor(wg, eidx).max(1.0);
        self.value() / f
    }

    /// Strict feasibility check (with tolerance for float accumulation).
    pub fn is_feasible(&self, wg: &WeightedGraph, eidx: &EdgeIndex, tol: f64) -> bool {
        self.feasibility_factor(wg, eidx) <= 1.0 + tol
    }

    /// Certified approximation ratio of a cover of weight `cover_weight`:
    /// `cover_weight / lower_bound`. The true ratio to OPT is at most this.
    pub fn certified_ratio(&self, wg: &WeightedGraph, eidx: &EdgeIndex, cover_weight: f64) -> f64 {
        let lb = self.lower_bound(wg, eidx);
        assert!(lb > 0.0, "certificate carries no information (Σx = 0)");
        cover_weight / lb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwvc_graph::generators::path;
    use mwvc_graph::{Graph, VertexWeights};

    fn setup() -> (WeightedGraph, EdgeIndex) {
        // Path 0-1-2 with weights 1, 2, 1.
        let g = path(3);
        let eidx = EdgeIndex::build(&g);
        let wg = WeightedGraph::new(g, VertexWeights::from_vec(vec![1.0, 2.0, 1.0]));
        (wg, eidx)
    }

    #[test]
    fn value_and_sums() {
        let (wg, eidx) = setup();
        let c = DualCertificate::new(vec![0.5, 0.25]);
        assert_eq!(c.value(), 0.75);
        let y = c.incident_sums(&wg, &eidx);
        assert_eq!(y, vec![0.5, 0.75, 0.25]);
    }

    #[test]
    fn feasible_certificate() {
        let (wg, eidx) = setup();
        let c = DualCertificate::new(vec![1.0, 1.0]);
        // y = [1, 2, 1] exactly tight everywhere.
        assert!((c.feasibility_factor(&wg, &eidx) - 1.0).abs() < 1e-12);
        assert!(c.is_feasible(&wg, &eidx, 1e-9));
        assert_eq!(c.lower_bound(&wg, &eidx), 2.0);
    }

    #[test]
    fn infeasible_certificate_is_rescaled() {
        let (wg, eidx) = setup();
        let c = DualCertificate::new(vec![2.0, 2.0]);
        // y = [2,4,2]: factor 2 over-tight; lower bound halves.
        assert!((c.feasibility_factor(&wg, &eidx) - 2.0).abs() < 1e-12);
        assert!(!c.is_feasible(&wg, &eidx, 1e-9));
        assert!((c.lower_bound(&wg, &eidx) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn certified_ratio_bounds_true_ratio() {
        let (wg, eidx) = setup();
        // OPT here: {1} with weight 2... actually {1} covers both edges,
        // weight 2. Cover {0, 2} has weight 2 as well.
        let c = DualCertificate::new(vec![1.0, 1.0]);
        let ratio = c.certified_ratio(&wg, &eidx, 2.0);
        assert!((ratio - 1.0).abs() < 1e-12, "tight instance: ratio 1");
    }

    #[test]
    #[should_panic(expected = "no information")]
    fn zero_certificate_panics_on_ratio() {
        let (wg, eidx) = setup();
        let c = DualCertificate::new(vec![0.0, 0.0]);
        let _ = c.certified_ratio(&wg, &eidx, 2.0);
    }

    #[test]
    fn empty_graph_certificate() {
        let g = Graph::empty(2);
        let eidx = EdgeIndex::build(&g);
        let wg = WeightedGraph::unweighted(g);
        let c = DualCertificate::new(vec![]);
        assert_eq!(c.value(), 0.0);
        assert_eq!(c.feasibility_factor(&wg, &eidx), 0.0);
        assert!(c.is_feasible(&wg, &eidx, 0.0));
    }
}
