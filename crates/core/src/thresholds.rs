//! Freeze thresholds `T_{v,t} ∈ [1-4ε, 1-2ε]` (Algorithm 1 line 3,
//! Algorithm 2 line 2d).
//!
//! The MPC analysis *requires* the thresholds to be independent uniform
//! random draws: Lemma 4.8 bounds the probability a vertex's noisy local
//! estimate lands on the wrong side of its threshold by `σ/ε`, which is
//! only possible because the threshold position is random within a window
//! of width `2ε·w'(v)`. A fixed threshold lets an adversarial (or merely
//! unlucky) instance park many vertices right at the decision boundary,
//! where every machine resolves them differently — the E12 ablation
//! measures exactly this failure mode.
//!
//! Thresholds are a pure function of `(seed, phase, vertex, iteration)`,
//! so any machine — and the coupled centralized run of Lemma 4.6 — can
//! evaluate them without communication.

use mpc_sim::rng::{composite_rng, streams};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Threshold scheme choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThresholdScheme {
    /// Independent uniform draws from `[1-4ε, 1-2ε]` — the paper's scheme.
    UniformRandom,
    /// Fixed midpoint `1-3ε` — the ablation (breaks Lemma 4.8's argument).
    FixedMidpoint,
}

impl ThresholdScheme {
    /// `T_{v,t}` for the given epsilon, derived from
    /// `(seed, phase, vertex, iteration)`.
    pub fn threshold(&self, epsilon: f64, seed: u64, phase: u64, vertex: u32, t: u32) -> f64 {
        debug_assert!(epsilon > 0.0 && epsilon <= 0.25);
        match self {
            ThresholdScheme::UniformRandom => {
                // Full-width composite key. An earlier revision packed
                // (phase, vertex, t) into one u64 with shifts
                // (phase << 40 ^ vertex << 8 ^ t), which silently
                // collides once t reaches 256 (bleeding into the vertex
                // field) or phase reaches 2^24 (wrapping off the top) —
                // see the boundary regression tests below.
                let mut rng =
                    composite_rng(seed, streams::THRESHOLD, &[phase, vertex as u64, t as u64]);
                let lo = 1.0 - 4.0 * epsilon;
                let hi = 1.0 - 2.0 * epsilon;
                rng.gen_range(lo..hi)
            }
            ThresholdScheme::FixedMidpoint => 1.0 - 3.0 * epsilon,
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            ThresholdScheme::UniformRandom => "random",
            ThresholdScheme::FixedMidpoint => "fixed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 0.1;

    #[test]
    fn random_thresholds_stay_in_window() {
        let s = ThresholdScheme::UniformRandom;
        for v in 0..200u32 {
            for t in 0..10u32 {
                let th = s.threshold(EPS, 1, 0, v, t);
                assert!((1.0 - 4.0 * EPS..1.0 - 2.0 * EPS).contains(&th));
            }
        }
    }

    #[test]
    fn random_thresholds_are_reproducible() {
        let s = ThresholdScheme::UniformRandom;
        assert_eq!(s.threshold(EPS, 5, 2, 17, 3), s.threshold(EPS, 5, 2, 17, 3));
    }

    #[test]
    fn thresholds_vary_across_all_indices() {
        let s = ThresholdScheme::UniformRandom;
        let base = s.threshold(EPS, 1, 1, 1, 1);
        assert_ne!(base, s.threshold(EPS, 2, 1, 1, 1), "seed");
        assert_ne!(base, s.threshold(EPS, 1, 2, 1, 1), "phase");
        assert_ne!(base, s.threshold(EPS, 1, 1, 2, 1), "vertex");
        assert_ne!(base, s.threshold(EPS, 1, 1, 1, 2), "iteration");
    }

    #[test]
    fn random_thresholds_fill_the_window() {
        // Min and max over many draws should approach the window ends:
        // a degenerate generator would fail this.
        let s = ThresholdScheme::UniformRandom;
        let draws: Vec<f64> = (0..2000u32).map(|v| s.threshold(EPS, 9, 0, v, 0)).collect();
        let lo = draws.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = draws.iter().copied().fold(0.0, f64::max);
        let window = 2.0 * EPS;
        assert!(lo < 1.0 - 4.0 * EPS + 0.05 * window);
        assert!(hi > 1.0 - 2.0 * EPS - 0.05 * window);
    }

    #[test]
    fn old_packed_key_boundaries_no_longer_collide() {
        let s = ThresholdScheme::UniformRandom;
        // t >= 256 used to bleed into the vertex field:
        // key(p, v=1, t=0) == key(p, v=0, t=256) under the shift packing.
        assert_ne!(
            s.threshold(EPS, 3, 5, 1, 0),
            s.threshold(EPS, 3, 5, 0, 256),
            "iteration 256 must not alias vertex 1"
        );
        // More generally, every (v, t) with t = v * 256 aliased (v, 0)'s
        // neighborhood; sweep a band around the boundary.
        for v in 1..64u32 {
            assert_ne!(
                s.threshold(EPS, 3, 5, v, 0),
                s.threshold(EPS, 3, 5, 0, v * 256),
                "v={v}"
            );
        }
        // phase >= 2^24 used to wrap off the top of the u64.
        assert_ne!(
            s.threshold(EPS, 3, 0, 7, 2),
            s.threshold(EPS, 3, 1 << 24, 7, 2),
            "phase 2^24 must not alias phase 0"
        );
    }

    #[test]
    fn large_iteration_counts_draw_distinct_thresholds() {
        // Growing iteration schedules must keep drawing fresh randomness
        // arbitrarily far out.
        let s = ThresholdScheme::UniformRandom;
        let draws: Vec<u64> = (0..2048u32)
            .map(|t| s.threshold(EPS, 11, 2, 9, t).to_bits())
            .collect();
        let mut unique = draws.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), draws.len(), "duplicate threshold draws");
    }

    #[test]
    fn fixed_midpoint_is_constant() {
        let s = ThresholdScheme::FixedMidpoint;
        assert_eq!(s.threshold(EPS, 1, 2, 3, 4), 1.0 - 3.0 * EPS);
        assert_eq!(s.threshold(EPS, 9, 9, 9, 9), 1.0 - 3.0 * EPS);
    }
}
