//! Freeze thresholds `T_{v,t} ∈ [1-4ε, 1-2ε]` (Algorithm 1 line 3,
//! Algorithm 2 line 2d).
//!
//! The MPC analysis *requires* the thresholds to be independent uniform
//! random draws: Lemma 4.8 bounds the probability a vertex's noisy local
//! estimate lands on the wrong side of its threshold by `σ/ε`, which is
//! only possible because the threshold position is random within a window
//! of width `2ε·w'(v)`. A fixed threshold lets an adversarial (or merely
//! unlucky) instance park many vertices right at the decision boundary,
//! where every machine resolves them differently — the E12 ablation
//! measures exactly this failure mode.
//!
//! Thresholds are a pure function of `(seed, phase, vertex, iteration)`,
//! so any machine — and the coupled centralized run of Lemma 4.6 — can
//! evaluate them without communication.

use mpc_sim::rng::{indexed_rng, streams};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Threshold scheme choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThresholdScheme {
    /// Independent uniform draws from `[1-4ε, 1-2ε]` — the paper's scheme.
    UniformRandom,
    /// Fixed midpoint `1-3ε` — the ablation (breaks Lemma 4.8's argument).
    FixedMidpoint,
}

impl ThresholdScheme {
    /// `T_{v,t}` for the given epsilon, derived from
    /// `(seed, phase, vertex, iteration)`.
    pub fn threshold(&self, epsilon: f64, seed: u64, phase: u64, vertex: u32, t: u32) -> f64 {
        debug_assert!(epsilon > 0.0 && epsilon < 0.25);
        match self {
            ThresholdScheme::UniformRandom => {
                let key = (phase << 40) ^ ((vertex as u64) << 8) ^ (t as u64);
                let mut rng = indexed_rng(seed, streams::THRESHOLD, key);
                let lo = 1.0 - 4.0 * epsilon;
                let hi = 1.0 - 2.0 * epsilon;
                rng.gen_range(lo..hi)
            }
            ThresholdScheme::FixedMidpoint => 1.0 - 3.0 * epsilon,
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            ThresholdScheme::UniformRandom => "random",
            ThresholdScheme::FixedMidpoint => "fixed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 0.1;

    #[test]
    fn random_thresholds_stay_in_window() {
        let s = ThresholdScheme::UniformRandom;
        for v in 0..200u32 {
            for t in 0..10u32 {
                let th = s.threshold(EPS, 1, 0, v, t);
                assert!((1.0 - 4.0 * EPS..1.0 - 2.0 * EPS).contains(&th));
            }
        }
    }

    #[test]
    fn random_thresholds_are_reproducible() {
        let s = ThresholdScheme::UniformRandom;
        assert_eq!(s.threshold(EPS, 5, 2, 17, 3), s.threshold(EPS, 5, 2, 17, 3));
    }

    #[test]
    fn thresholds_vary_across_all_indices() {
        let s = ThresholdScheme::UniformRandom;
        let base = s.threshold(EPS, 1, 1, 1, 1);
        assert_ne!(base, s.threshold(EPS, 2, 1, 1, 1), "seed");
        assert_ne!(base, s.threshold(EPS, 1, 2, 1, 1), "phase");
        assert_ne!(base, s.threshold(EPS, 1, 1, 2, 1), "vertex");
        assert_ne!(base, s.threshold(EPS, 1, 1, 1, 2), "iteration");
    }

    #[test]
    fn random_thresholds_fill_the_window() {
        // Min and max over many draws should approach the window ends:
        // a degenerate generator would fail this.
        let s = ThresholdScheme::UniformRandom;
        let draws: Vec<f64> = (0..2000u32).map(|v| s.threshold(EPS, 9, 0, v, 0)).collect();
        let lo = draws.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = draws.iter().copied().fold(0.0, f64::max);
        let window = 2.0 * EPS;
        assert!(lo < 1.0 - 4.0 * EPS + 0.05 * window);
        assert!(hi > 1.0 - 2.0 * EPS - 0.05 * window);
    }

    #[test]
    fn fixed_midpoint_is_constant() {
        let s = ThresholdScheme::FixedMidpoint;
        assert_eq!(s.threshold(EPS, 1, 2, 3, 4), 1.0 - 3.0 * EPS);
        assert_eq!(s.threshold(EPS, 9, 9, 9, 9), 1.0 - 3.0 * EPS);
    }
}
