//! `mwvc-core` — the primary contribution of Ghaffari–Jin–Nilis
//! (SPAA 2020): a `(2+ε)`-approximation algorithm for minimum weight
//! vertex cover running in `O(log log d)` rounds of the near-linear-memory
//! MPC model.
//!
//! # Quickstart
//!
//! ```
//! use mwvc_core::{solve_mpc, MpcMwvcConfig};
//! use mwvc_graph::{generators::gnm, WeightedGraph, WeightModel};
//!
//! let graph = gnm(1_000, 16_000, 7);
//! let weights = WeightModel::Uniform { lo: 1.0, hi: 10.0 }.sample(&graph, 7);
//! let instance = WeightedGraph::new(graph, weights);
//!
//! let result = solve_mpc(&instance, &MpcMwvcConfig::practical(0.1, 42));
//! result.cover.verify(&instance.graph).unwrap();
//! let eidx = mwvc_graph::EdgeIndex::build(&instance.graph);
//! let ratio = result
//!     .certificate
//!     .certified_ratio(&instance, &eidx, result.cover.weight(&instance));
//! assert!(ratio <= 2.0 + 30.0 * 0.1);
//! ```
//!
//! # Layout
//!
//! * [`centralized`] — Algorithm 1, the generic primal-dual loop
//!   (Section 3.1), with pluggable [`init::InitScheme`] and
//!   [`thresholds::ThresholdScheme`].
//! * [`mpc`] — Algorithm 2, the round-compressed MPC simulation
//!   (Section 3.3), as both an in-memory reference executor and a
//!   message-passing executor on the [`mpc_sim`] cluster.
//! * [`cover`] / [`certificate`] — outputs: verified covers and dual
//!   (fractional matching) certificates giving instance-specific
//!   approximation guarantees via weak LP duality (Lemma 3.2).

#![warn(missing_docs)]

pub mod centralized;
pub mod certificate;
pub mod cover;
pub mod init;
pub mod mpc;
pub mod thresholds;

pub use centralized::{run_centralized, CentralizedParams, CentralizedResult};
pub use certificate::DualCertificate;
pub use cover::VertexCover;
pub use init::InitScheme;
pub use mpc::{MpcMwvcConfig, MpcRunResult};
pub use thresholds::ThresholdScheme;

use mwvc_graph::WeightedGraph;

/// Solves MWVC with the centralized Algorithm 1 under the paper's
/// recommended (degree-weighted) initialization and random thresholds.
pub fn solve_centralized(instance: &WeightedGraph, epsilon: f64, seed: u64) -> CentralizedResult {
    run_centralized(
        instance,
        CentralizedParams::new(epsilon),
        InitScheme::DegreeWeighted,
        ThresholdScheme::UniformRandom,
        seed,
    )
}

/// Solves MWVC with Algorithm 2 (reference executor).
pub fn solve_mpc(instance: &WeightedGraph, config: &MpcMwvcConfig) -> MpcRunResult {
    mpc::run_reference(instance, config)
}

/// Solves MWVC with Algorithm 2 executed as message-passing dataflow on an
/// [`mpc_sim`] cluster, returning the run result together with the audited
/// execution trace (rounds, memory, traffic).
pub fn solve_mpc_distributed(
    instance: &WeightedGraph,
    config: &MpcMwvcConfig,
    cluster: mpc_sim::MpcConfig,
) -> mpc::DistributedOutcome {
    mpc::run_distributed(instance, config, cluster)
}
