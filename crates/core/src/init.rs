//! Initial fractional matchings (Algorithm 1, line 2).
//!
//! The paper's key departure from prior work is the *degree-weighted*
//! initialization `x_(u,v) = min(w(u)/d(u), w(v)/d(v))` (Section 3.2),
//! which makes the centralized algorithm terminate in `O(log Δ)`
//! iterations independently of the weight scale (Proposition 3.4) and —
//! unlike the `min(w(u),w(v))/Δ` variant — yields the `O(log log d)` MPC
//! bound in terms of the *average* degree. All three schemes discussed in
//! the paper are implemented for the E02/E09 comparisons.

use mwvc_graph::{EdgeIndex, Graph};
use serde::{Deserialize, Serialize};

/// How the initial dual values `x_{e,0}` are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InitScheme {
    /// The paper's scheme: `x_e = min(w(u)/d(u), w(v)/d(v))`.
    /// Terminates in `O(log Δ)` centralized iterations; gives the
    /// `O(log log d)` MPC bound.
    DegreeWeighted,
    /// The discussed alternative: `x_e = min(w(u), w(v)) / Δ`.
    /// Same `O(log Δ)` centralized bound but only `O(log log Δ)` in MPC.
    MaxDegree,
    /// The classic unweighted-style scheme, made scale-free:
    /// `x_e = min_z w(z) / n`. Centralized running time degrades to
    /// `O(log (W·n))` where `W = max w / min w` (the weight spread).
    Uniform,
}

impl InitScheme {
    /// Computes `x_{e,0}` for every edge, indexed by [`EdgeIndex`] id.
    ///
    /// `weights` and `degrees` are per-vertex; `degrees[v]` is the degree
    /// the scheme should use — the plain graph degree in the centralized
    /// setting, the *residual* (nonfrozen-neighbor) degree inside an MPC
    /// phase (the paper's Remark 4.2). Degrees of vertices with incident
    /// edges must be positive.
    pub fn initial_values(
        &self,
        graph: &Graph,
        eidx: &EdgeIndex,
        weights: &[f64],
        degrees: &[usize],
    ) -> Vec<f64> {
        assert_eq!(weights.len(), graph.num_vertices());
        assert_eq!(degrees.len(), graph.num_vertices());
        let m = eidx.num_edges();
        let mut x = Vec::with_capacity(m);
        match self {
            InitScheme::DegreeWeighted => {
                for e in eidx.edges() {
                    let (u, v) = (e.u() as usize, e.v() as usize);
                    debug_assert!(degrees[u] > 0 && degrees[v] > 0);
                    let xu = weights[u] / degrees[u] as f64;
                    let xv = weights[v] / degrees[v] as f64;
                    x.push(xu.min(xv));
                }
            }
            InitScheme::MaxDegree => {
                let delta = degrees.iter().copied().max().unwrap_or(0).max(1) as f64;
                for e in eidx.edges() {
                    let (u, v) = (e.u() as usize, e.v() as usize);
                    x.push(weights[u].min(weights[v]) / delta);
                }
            }
            InitScheme::Uniform => {
                let n = graph.num_vertices().max(1) as f64;
                let w_min = weights
                    .iter()
                    .copied()
                    .filter(|w| *w > 0.0)
                    .fold(f64::INFINITY, f64::min);
                let base = if w_min.is_finite() { w_min / n } else { 0.0 };
                x.resize(m, base);
            }
        }
        x
    }

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            InitScheme::DegreeWeighted => "w/d",
            InitScheme::MaxDegree => "w/Delta",
            InitScheme::Uniform => "1/n",
        }
    }

    /// The per-edge initial value inside an MPC phase (Algorithm 2 line
    /// 2c generalized to the three schemes of Section 3.2), computed from
    /// the endpoints' residual weights `w'` and residual degrees `d`, the
    /// global residual maximum degree `delta`, the minimum nonfrozen
    /// residual weight `min_wp`, and the vertex count `n`.
    ///
    /// Each input is available to every participant of the distributed
    /// dataflow without extra rounds (the scalars ride on the phase plan),
    /// which is why the signature is scalar-level rather than graph-level.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn phase_value(
        &self,
        wu: f64,
        du: usize,
        wv: f64,
        dv: usize,
        delta: usize,
        min_wp: f64,
        n: usize,
    ) -> f64 {
        match self {
            InitScheme::DegreeWeighted => (wu / du as f64).min(wv / dv as f64),
            InitScheme::MaxDegree => wu.min(wv) / delta.max(1) as f64,
            InitScheme::Uniform => min_wp / n.max(1) as f64,
        }
    }
}

/// Checks that `x` is a valid fractional matching w.r.t. `weights`
/// (within `tol` relative slack per vertex). Shared by tests of every
/// algorithm.
pub fn is_valid_fractional_matching(
    graph: &Graph,
    eidx: &EdgeIndex,
    weights: &[f64],
    x: &[f64],
    tol: f64,
) -> bool {
    if x.iter().any(|&v| v < -tol || !v.is_finite()) {
        return false;
    }
    let mut y = vec![0.0f64; graph.num_vertices()];
    for (eid, &xv) in x.iter().enumerate() {
        let e = eidx.edge(eid as u32);
        y[e.u() as usize] += xv;
        y[e.v() as usize] += xv;
    }
    (0..graph.num_vertices()).all(|v| y[v] <= weights[v] * (1.0 + tol))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwvc_graph::generators::{gnp, star};
    use mwvc_graph::WeightModel;

    fn degrees(g: &Graph) -> Vec<usize> {
        g.vertices().map(|v| g.degree(v)).collect()
    }

    #[test]
    fn degree_weighted_matches_formula() {
        let g = star(4); // center 0 degree 3, leaves degree 1
        let eidx = EdgeIndex::build(&g);
        let w = vec![3.0, 1.0, 2.0, 9.0];
        let x = InitScheme::DegreeWeighted.initial_values(&g, &eidx, &w, &degrees(&g));
        // Edge (0,1): min(3/3, 1/1) = 1; (0,2): min(1, 2) = 1; (0,3): min(1, 9) = 1.
        assert_eq!(x, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn max_degree_matches_formula() {
        let g = star(4);
        let eidx = EdgeIndex::build(&g);
        let w = vec![3.0, 1.0, 2.0, 9.0];
        let x = InitScheme::MaxDegree.initial_values(&g, &eidx, &w, &degrees(&g));
        // Δ = 3; min weights per edge: 1, 2, 3.
        assert_eq!(x, vec![1.0 / 3.0, 2.0 / 3.0, 1.0]);
    }

    #[test]
    fn uniform_matches_formula() {
        let g = star(4);
        let eidx = EdgeIndex::build(&g);
        let w = vec![3.0, 1.0, 2.0, 9.0];
        let x = InitScheme::Uniform.initial_values(&g, &eidx, &w, &degrees(&g));
        assert_eq!(x, vec![0.25, 0.25, 0.25]);
    }

    #[test]
    fn all_schemes_are_valid_matchings() {
        let g = gnp(300, 0.05, 3);
        let eidx = EdgeIndex::build(&g);
        let w = WeightModel::Uniform { lo: 0.5, hi: 10.0 }
            .sample(&g, 7)
            .as_slice()
            .to_vec();
        let d = degrees(&g);
        for scheme in [
            InitScheme::DegreeWeighted,
            InitScheme::MaxDegree,
            InitScheme::Uniform,
        ] {
            let x = scheme.initial_values(&g, &eidx, &w, &d);
            assert!(
                is_valid_fractional_matching(&g, &eidx, &w, &x, 1e-9),
                "{} violates dual constraints",
                scheme.label()
            );
            assert!(
                x.iter().all(|&v| v > 0.0),
                "{} has zero entries",
                scheme.label()
            );
        }
    }

    #[test]
    fn validity_checker_rejects_bad_matchings() {
        let g = star(3);
        let eidx = EdgeIndex::build(&g);
        let w = vec![1.0, 1.0, 1.0];
        // y_0 = 2 > w_0 = 1.
        assert!(!is_valid_fractional_matching(
            &g,
            &eidx,
            &w,
            &[1.0, 1.0],
            1e-9
        ));
        assert!(!is_valid_fractional_matching(
            &g,
            &eidx,
            &w,
            &[-0.5, 0.5],
            1e-9
        ));
        assert!(is_valid_fractional_matching(
            &g,
            &eidx,
            &w,
            &[0.5, 0.5],
            1e-9
        ));
    }

    #[test]
    fn labels() {
        assert_eq!(InitScheme::DegreeWeighted.label(), "w/d");
        assert_eq!(InitScheme::MaxDegree.label(), "w/Delta");
        assert_eq!(InitScheme::Uniform.label(), "1/n");
    }
}
