//! Algorithm 1: the generic centralized primal-dual MWVC algorithm.
//!
//! ```text
//! 1. Input: graph G = (V,E), weight function w : V → R+
//! 2. Initialization: {x_{e,0}} an arbitrary valid fractional matching
//! 3. T_{v,t} arbitrary numbers in [1-4ε, 1-2ε]
//! 4. While at least one edge is active, iterate t = 0, 1, ...:
//!    (a) for each active vertex v with y_{v,t} = Σ_{e∋v} x_{e,t} ≥ T_{v,t}·w(v):
//!        freeze v and its incident edges
//!    (b) for each active edge: x_{e,t+1} = x_{e,t} / (1-ε)
//!    (c) for each frozen edge: x_{e,t+1} = x_{e,t}
//! 5. Return all frozen vertices as a vertex cover
//! ```
//!
//! Guarantees (proved in the paper, asserted in this crate's tests):
//! * the `{x_e}` remain a valid fractional matching throughout
//!   (Observation 3.1),
//! * the returned set is a vertex cover of weight `≤ (2+10ε)·OPT`
//!   (Proposition 3.3),
//! * with the degree-weighted initialization the loop runs `O(log Δ)`
//!   iterations (Proposition 3.4).
//!
//! The implementation is `O(n·T + m)` for `T` iterations: active edges all
//! grow by the same factor per iteration, so each vertex's active incident
//! weight is maintained as `(initial sum) · (1-ε)^{-t}` and only freezing
//! does per-edge work.

use crate::certificate::DualCertificate;
use crate::cover::VertexCover;
use crate::init::InitScheme;
use crate::thresholds::ThresholdScheme;
use mwvc_graph::{EdgeIndex, Graph, VertexId, WeightedGraph};
use serde::{Deserialize, Serialize};

/// Parameters of a centralized run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CentralizedParams {
    /// The accuracy parameter `ε ∈ (0, 1/4)`; the cover is
    /// `(2+10ε)`-approximate.
    pub epsilon: f64,
    /// Safety cap on iterations (the algorithm terminates on its own; this
    /// guards pathological custom initializations).
    pub max_iterations: usize,
}

impl CentralizedParams {
    /// Standard parameters for a given epsilon.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon <= 0.25,
            "epsilon must lie in (0, 1/4], got {epsilon}"
        );
        Self {
            epsilon,
            max_iterations: 100_000,
        }
    }
}

/// Per-iteration progress record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Vertices frozen in this iteration.
    pub newly_frozen_vertices: usize,
    /// Edges frozen in this iteration.
    pub newly_frozen_edges: usize,
    /// Active edges remaining after the iteration.
    pub active_edges: usize,
}

/// Output of a centralized run.
#[derive(Debug, Clone)]
pub struct CentralizedResult {
    /// The frozen vertices (a vertex cover when the loop ran to
    /// completion).
    pub cover: VertexCover,
    /// Final dual values `x_e` — a valid fractional matching.
    pub certificate: DualCertificate,
    /// Iterations executed.
    pub iterations: usize,
    /// Per-vertex freeze iteration (`None` = never frozen).
    pub freeze_iteration: Vec<Option<u32>>,
    /// Per-edge freeze iteration (`None` = never frozen; impossible after
    /// normal termination).
    pub edge_freeze_iteration: Vec<Option<u32>>,
    /// Per-iteration progress.
    pub trace: Vec<IterationRecord>,
}

/// Runs Algorithm 1 on a weighted graph with a named initialization and
/// threshold scheme. `seed` feeds the random thresholds.
pub fn run_centralized(
    wg: &WeightedGraph,
    params: CentralizedParams,
    init: InitScheme,
    thresholds: ThresholdScheme,
    seed: u64,
) -> CentralizedResult {
    let eidx = EdgeIndex::build(&wg.graph);
    let degrees: Vec<usize> = wg.graph.vertices().map(|v| wg.graph.degree(v)).collect();
    let x0 = init.initial_values(&wg.graph, &eidx, wg.weights.as_slice(), &degrees);
    let eps = params.epsilon;
    run_centralized_raw(
        &wg.graph,
        &eidx,
        wg.weights.as_slice(),
        x0,
        params,
        |v, t| thresholds.threshold(eps, seed, u64::MAX, v, t),
    )
}

/// Runs Algorithm 1 with explicit initial dual values and an arbitrary
/// threshold function `T(v, t)`. This is the entry point the MPC layers
/// use (residual weights, per-phase thresholds, induced subgraphs).
pub fn run_centralized_raw(
    graph: &Graph,
    eidx: &EdgeIndex,
    weights: &[f64],
    x0: Vec<f64>,
    params: CentralizedParams,
    threshold: impl Fn(VertexId, u32) -> f64,
) -> CentralizedResult {
    let n = graph.num_vertices();
    let m = eidx.num_edges();
    assert_eq!(weights.len(), n);
    assert_eq!(x0.len(), m);
    let growth = 1.0 / (1.0 - params.epsilon);

    // Per-vertex state: frozen incident weight, initial active incident
    // weight (the active part at iteration t is active_sum0 * growth^t).
    let mut frozen_sum = vec![0.0f64; n];
    let mut active_sum0 = vec![0.0f64; n];
    for (eid, &x) in x0.iter().enumerate() {
        let e = eidx.edge(eid as u32);
        active_sum0[e.u() as usize] += x;
        active_sum0[e.v() as usize] += x;
    }

    let mut vertex_active = vec![true; n];
    let mut freeze_iteration: Vec<Option<u32>> = vec![None; n];
    let mut edge_freeze: Vec<Option<u32>> = vec![None; m];
    let mut cover_members: Vec<VertexId> = Vec::new();
    let mut active_edges = m;
    let mut trace = Vec::new();

    let mut growth_t = 1.0f64; // growth^t
    let mut t: u32 = 0;
    while active_edges > 0 && (t as usize) < params.max_iterations {
        // (4a) Simultaneous freeze test against the state at time t.
        let mut to_freeze: Vec<VertexId> = Vec::new();
        for v in 0..n {
            if !vertex_active[v] {
                continue;
            }
            let y = frozen_sum[v] + active_sum0[v] * growth_t;
            if y >= threshold(v as VertexId, t) * weights[v] {
                to_freeze.push(v as VertexId);
            }
        }
        let mut newly_frozen_edges = 0usize;
        for &v in &to_freeze {
            vertex_active[v as usize] = false;
            freeze_iteration[v as usize] = Some(t);
            cover_members.push(v);
        }
        for &v in &to_freeze {
            for (u, eid) in eidx.incident(graph, v) {
                if edge_freeze[eid as usize].is_some() {
                    continue;
                }
                edge_freeze[eid as usize] = Some(t);
                newly_frozen_edges += 1;
                active_edges -= 1;
                let x_final = x0[eid as usize] * growth_t;
                for z in [v, u] {
                    active_sum0[z as usize] -= x0[eid as usize];
                    frozen_sum[z as usize] += x_final;
                }
            }
        }
        trace.push(IterationRecord {
            newly_frozen_vertices: to_freeze.len(),
            newly_frozen_edges,
            active_edges,
        });
        // (4b)/(4c): active edges grow, frozen stay — via the lazy factor.
        growth_t *= growth;
        t += 1;
    }

    // Materialize final dual values: frozen edges at their freeze-time
    // value, still-active edges (max_iterations hit) at the current one.
    let x_final: Vec<f64> = x0
        .iter()
        .enumerate()
        .map(|(eid, &x)| match edge_freeze[eid] {
            Some(ft) => x * growth.powi(ft as i32),
            None => x * growth_t,
        })
        .collect();

    CentralizedResult {
        cover: VertexCover::new(n, cover_members),
        certificate: DualCertificate::new(x_final),
        iterations: t as usize,
        freeze_iteration,
        edge_freeze_iteration: edge_freeze,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::is_valid_fractional_matching;
    use mwvc_graph::generators::{clique, gnp, path, star};
    use mwvc_graph::{VertexWeights, WeightModel};

    const EPS: f64 = 0.1;

    fn run(wg: &WeightedGraph, init: InitScheme) -> CentralizedResult {
        run_centralized(
            wg,
            CentralizedParams::new(EPS),
            init,
            ThresholdScheme::UniformRandom,
            42,
        )
    }

    fn check_guarantees(wg: &WeightedGraph, res: &CentralizedResult) {
        // The output is a cover.
        res.cover.verify(&wg.graph).expect("not a vertex cover");
        // Observation 3.1: final x is a valid fractional matching.
        let eidx = EdgeIndex::build(&wg.graph);
        assert!(is_valid_fractional_matching(
            &wg.graph,
            &eidx,
            wg.weights.as_slice(),
            &res.certificate.x,
            1e-9
        ));
        // Proposition 3.3 accounting: w(C) <= 2/(1-4eps) * sum(x).
        let wc = res.cover.weight(wg);
        let dual = res.certificate.value();
        if wg.num_edges() > 0 {
            assert!(
                wc <= 2.0 / (1.0 - 4.0 * EPS) * dual + 1e-9,
                "cover weight {wc} vs duality bound {}",
                2.0 / (1.0 - 4.0 * EPS) * dual
            );
        }
    }

    #[test]
    fn empty_graph_returns_empty_cover() {
        let wg = WeightedGraph::unweighted(Graph::empty(5));
        let res = run(&wg, InitScheme::DegreeWeighted);
        assert_eq!(res.cover.size(), 0);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn star_guarantees() {
        let wg = WeightedGraph::new(
            star(20),
            VertexWeights::from_vec(std::iter::once(1.0).chain((1..20).map(|_| 10.0)).collect()),
        );
        let res = run(&wg, InitScheme::DegreeWeighted);
        check_guarantees(&wg, &res);
        // The cheap center should carry the cover: weight far below the
        // 19 * 10 all-leaves alternative.
        assert!(res.cover.weight(&wg) <= (2.0 + 10.0 * EPS) * 1.0 + 1e-9);
    }

    #[test]
    fn path_guarantees() {
        let wg = WeightedGraph::unweighted(path(10));
        let res = run(&wg, InitScheme::DegreeWeighted);
        check_guarantees(&wg, &res);
        // OPT for P10 (9 edges) has cardinality >= 4 wait; any cover of a
        // path on 10 vertices needs >= ceil(9/2)... each vertex covers <= 2
        // edges, so >= ceil(9/2) = 5 is wrong (interior vertices cover 2):
        // OPT = 4 ({1,3,5,7} leaves edge (8,9) uncovered -> OPT is 5? No:
        // vertices 1,3,5,7 cover edges 0-1..7-8; edge 8-9 needs 8 or 9.
        // OPT = 5.) Guarantee: size <= (2+10eps)*5.
        assert!(res.cover.size() as f64 <= (2.0 + 10.0 * EPS) * 5.0);
    }

    #[test]
    fn random_graph_guarantees_all_inits() {
        let g = gnp(200, 0.05, 11);
        for model in [
            WeightModel::Constant(1.0),
            WeightModel::Uniform { lo: 0.5, hi: 20.0 },
            WeightModel::Zipf {
                exponent: 1.2,
                scale: 50.0,
            },
        ] {
            let weights = model.sample(&g, 3);
            let wg = WeightedGraph::new(g.clone(), weights);
            for init in [
                InitScheme::DegreeWeighted,
                InitScheme::MaxDegree,
                InitScheme::Uniform,
            ] {
                let res = run(&wg, init);
                check_guarantees(&wg, &res);
            }
        }
    }

    #[test]
    fn proposition_3_4_iteration_bound() {
        // Degree-weighted init terminates within log_{1/(1-eps)}(Delta) + 2
        // iterations (the +2 absorbs threshold slack: freezing happens as
        // soon as y crosses ~ (1-4eps) w(v), before the dual constraint is
        // violated).
        let g = gnp(500, 0.04, 5);
        let delta = g.max_degree() as f64;
        let wg = WeightedGraph::new(
            g.clone(),
            WeightModel::Uniform { lo: 1.0, hi: 1e6 }.sample(&g, 1),
        );
        let res = run(&wg, InitScheme::DegreeWeighted);
        let bound = delta.ln() / (1.0 / (1.0 - EPS)).ln() + 2.0;
        assert!(
            (res.iterations as f64) <= bound,
            "iterations {} exceed O(log Delta) bound {bound}",
            res.iterations
        );
        check_guarantees(&wg, &res);
    }

    #[test]
    fn uniform_init_depends_on_weight_scale() {
        // With 1/n-style init, iterations grow with the weight spread W;
        // with degree-weighted init they do not.
        let g = gnp(300, 0.05, 9);
        let narrow = WeightedGraph::new(
            g.clone(),
            WeightModel::Uniform { lo: 1.0, hi: 2.0 }.sample(&g, 2),
        );
        let wide = WeightedGraph::new(
            g.clone(),
            WeightModel::Uniform { lo: 1.0, hi: 1e9 }.sample(&g, 2),
        );
        let iters = |wg: &WeightedGraph, init| run(wg, init).iterations;
        let uniform_growth =
            iters(&wide, InitScheme::Uniform) as f64 / iters(&narrow, InitScheme::Uniform) as f64;
        assert!(
            uniform_growth > 1.5,
            "uniform init should slow down with weight spread (grew {uniform_growth}x)"
        );
        // Degree-weighted iterations stay within the O(log Delta) bound of
        // Proposition 3.4 regardless of the weight spread, while uniform
        // init on wide weights takes several times longer.
        let delta_bound = (g.max_degree() as f64).ln() / (1.0 / (1.0 - EPS)).ln() + 2.0;
        let dw_wide = iters(&wide, InitScheme::DegreeWeighted);
        assert!((dw_wide as f64) <= delta_bound);
        assert!((iters(&narrow, InitScheme::DegreeWeighted) as f64) <= delta_bound);
        assert!(
            iters(&wide, InitScheme::Uniform) > 3 * dw_wide,
            "uniform init on wide weights should be several times slower"
        );
    }

    #[test]
    fn freeze_iterations_are_recorded_consistently() {
        let wg = WeightedGraph::unweighted(clique(8));
        let res = run(&wg, InitScheme::DegreeWeighted);
        for v in 0..8u32 {
            match res.freeze_iteration[v as usize] {
                Some(t) => {
                    assert!(res.cover.contains(v));
                    assert!((t as usize) < res.iterations);
                }
                None => assert!(!res.cover.contains(v)),
            }
        }
        // Every edge freezes no later than both endpoints.
        let eidx = EdgeIndex::build(&wg.graph);
        for (eid, e) in eidx.edges().iter().enumerate() {
            let ef = res.edge_freeze_iteration[eid].expect("all edges frozen");
            let fu = res.freeze_iteration[e.u() as usize];
            let fv = res.freeze_iteration[e.v() as usize];
            let earliest = [fu, fv].into_iter().flatten().min().expect("covered edge");
            assert_eq!(ef, earliest);
        }
    }

    #[test]
    fn trace_accounts_for_all_edges() {
        let wg = WeightedGraph::unweighted(gnp(100, 0.1, 3));
        let res = run(&wg, InitScheme::DegreeWeighted);
        let total_frozen: usize = res.trace.iter().map(|r| r.newly_frozen_edges).sum();
        assert_eq!(total_frozen, wg.num_edges());
        assert_eq!(res.trace.last().unwrap().active_edges, 0);
    }

    #[test]
    fn fixed_thresholds_also_work_centrally() {
        // Fixed thresholds break the MPC analysis, not the centralized one.
        let wg = WeightedGraph::unweighted(gnp(150, 0.06, 8));
        let res = run_centralized(
            &wg,
            CentralizedParams::new(EPS),
            InitScheme::DegreeWeighted,
            ThresholdScheme::FixedMidpoint,
            0,
        );
        check_guarantees(&wg, &res);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn epsilon_out_of_range_rejected() {
        let _ = CentralizedParams::new(0.3);
    }

    use mwvc_graph::Graph;
}
