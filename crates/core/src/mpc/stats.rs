//! Execution statistics of an Algorithm 2 run — the raw material of
//! experiments E01, E04 and E05.

use mpc_sim::MpcConfig;
use serde::{Deserialize, Serialize};

/// Statistics of one phase of Algorithm 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Phase index, 0-based.
    pub phase: usize,
    /// Average degree `d = (1/n)·Σ_{v nonfrozen} d(v)` at phase start.
    pub d_avg: f64,
    /// `|V^high|`.
    pub n_high: usize,
    /// `|V^inactive|` (nonfrozen, below the degree cutoff).
    pub n_inactive: usize,
    /// Machine count `m` used for the partition.
    pub machines: usize,
    /// Local iterations `I` simulated.
    pub iterations: usize,
    /// `|E[V^high]|` — edges participating in the phase.
    pub edges_high: usize,
    /// `max_i |E[V_i]|` — the Lemma 4.1 quantity.
    pub max_machine_edges: usize,
    /// Sum over machines of `|E[V_i]|` (locally simulated edges).
    pub local_edges_total: usize,
    /// Vertices frozen by the local simulations (line 2(g)i).
    pub frozen_local: usize,
    /// Vertices frozen by the over-freeze correction (line 2i).
    pub frozen_corrected: usize,
    /// Nonfrozen edges before the phase.
    pub nonfrozen_edges_before: usize,
    /// Nonfrozen edges after the phase (the Lemma 4.4 quantity).
    pub nonfrozen_edges_after: usize,
}

impl PhaseStats {
    /// Lemma 4.4's bound on `nonfrozen_edges_after`:
    /// `2·n·d·(1-ε)^I` (in edge units; the lemma states it for
    /// `(1/2)·Σ d(v)`).
    pub fn lemma_4_4_bound(&self, n: usize, epsilon: f64) -> f64 {
        2.0 * n as f64 * self.d_avg * (1.0 - epsilon).powi(self.iterations as i32)
    }
}

/// Statistics of the final centralized phase (Algorithm 2 line 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FinalPhaseStats {
    /// Vertices of the residual instance moved to one machine.
    pub vertices: usize,
    /// Edges of the residual instance.
    pub edges: usize,
    /// Iterations the centralized algorithm ran.
    pub iterations: usize,
}

/// Cost model of the faithful distributed executor, used to convert phase
/// counts into MPC round counts (each phase of Algorithm 2 is `O(1)` MPC
/// rounds; these constants are what our `distributed` module actually
/// spends).
pub mod round_cost {
    /// Rounds per compression phase in [`crate::mpc::distributed`]:
    /// stats, plan, classify, route, simulate, forward, party, correct,
    /// finalize.
    pub const PER_PHASE: usize = 9;
    /// Fixed rounds outside the phase loop: the startup subscribe round
    /// plus the closing stats, plan, gather, solve and apply rounds.
    pub const FINAL: usize = 6;
}

/// The measured communication-side costs of an executed run, as charged
/// by the MPC model. Only the message-passing executor produces these;
/// the reference executor computes the same algorithm without a router,
/// so its [`CostReport`] carries `traffic: None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficCosts {
    /// Machines in the executing cluster.
    pub machines: usize,
    /// Per-machine word budget `S` of the cluster.
    pub memory_cap_words: usize,
    /// Total words moved across the network over the whole run.
    pub total_message_words: usize,
    /// Largest per-machine per-round communication (send or receive side).
    pub peak_round_words: usize,
    /// Largest per-machine resident memory observed in any round.
    pub peak_resident_words: usize,
    /// Recorded model-constraint breaches (zero under strict enforcement).
    pub violations: usize,
    /// Total words written to per-machine spill files over the run
    /// (nonzero only under [`mpc_sim::MemoryBudget::Enforced`] when a
    /// machine's working set actually overflowed its budget).
    pub spill_words: u64,
    /// Total words written to round-granular recovery checkpoints
    /// (nonzero only when fault injection is active; checkpoints are
    /// charged separately from model spill so fault-free runs are
    /// bit-identical to faulty-but-recovered ones).
    pub checkpoint_words: u64,
    /// Rounds re-executed from a checkpoint after injected crash faults.
    pub replayed_rounds: u64,
}

/// The structured model-cost report of an Algorithm 2 execution: every
/// quantity the paper's cost model charges for, in one serializable
/// value. This is what the benchmark harness records and the perf gate
/// compares bit-for-bit — none of these fields may depend on host
/// threading or wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// Compression phases executed (the `O(log log n · log(1/ε))` headline
    /// quantity).
    pub phases: usize,
    /// MPC communication rounds. For the distributed executor this is the
    /// trace's actual round count; for the reference executor it is the
    /// [`round_cost`] model applied to the phase count.
    pub mpc_rounds: usize,
    /// Router-measured traffic and memory, when the run went through the
    /// audited cluster.
    pub traffic: Option<TrafficCosts>,
}

impl CostReport {
    /// Builds a report from an executed cluster trace.
    pub fn from_trace(phases: usize, trace: &mpc_sim::ExecutionTrace, cluster: &MpcConfig) -> Self {
        let s = trace.summary();
        CostReport {
            phases,
            mpc_rounds: s.rounds,
            traffic: Some(TrafficCosts {
                machines: cluster.num_machines,
                memory_cap_words: cluster.memory_words,
                total_message_words: s.total_message_words,
                peak_round_words: s.peak_round_words,
                peak_resident_words: s.peak_resident_words,
                violations: s.violations,
                spill_words: s.spill_words,
                checkpoint_words: s.checkpoint_words,
                replayed_rounds: s.replayed_rounds,
            }),
        }
    }
}

/// Full result of an Algorithm 2 run.
#[derive(Debug, Clone)]
pub struct MpcRunResult {
    /// The vertex cover (all frozen vertices).
    pub cover: crate::cover::VertexCover,
    /// Final per-edge dual values `x^MPC_e` (global edge-id order).
    pub certificate: crate::certificate::DualCertificate,
    /// Per-phase statistics.
    pub phases: Vec<PhaseStats>,
    /// Final centralized phase statistics (`None` only if the input had no
    /// edges).
    pub final_phase: Option<FinalPhaseStats>,
    /// Whether the loop stopped because no progress was possible
    /// (`E[V^high] = ∅`) rather than by the switch condition.
    pub stalled: bool,
    /// Whether the `max_phases` cap fired.
    pub hit_max_phases: bool,
}

impl MpcRunResult {
    /// Number of compression phases executed.
    pub fn num_phases(&self) -> usize {
        self.phases.len()
    }

    /// MPC rounds under the distributed cost model (the closing rounds
    /// run whether or not a residual instance was left to solve).
    pub fn mpc_rounds(&self) -> usize {
        self.phases.len() * round_cost::PER_PHASE + round_cost::FINAL
    }

    /// The structured model-cost report of this run. The reference
    /// executor routes no messages, so `traffic` is `None`; rounds come
    /// from the [`round_cost`] model.
    pub fn cost_report(&self) -> CostReport {
        CostReport {
            phases: self.num_phases(),
            mpc_rounds: self.mpc_rounds(),
            traffic: None,
        }
    }

    /// The Lemma 4.1 headline: the per-machine induced subgraph size,
    /// normalized by `n`, maximized over phases.
    pub fn peak_machine_edges_over_n(&self, n: usize) -> f64 {
        self.phases
            .iter()
            .map(|p| p.max_machine_edges as f64 / n.max(1) as f64)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::DualCertificate;
    use crate::cover::VertexCover;

    fn phase(i: usize, max_machine_edges: usize) -> PhaseStats {
        PhaseStats {
            phase: i,
            d_avg: 100.0,
            n_high: 10,
            n_inactive: 5,
            machines: 10,
            iterations: 3,
            edges_high: 500,
            max_machine_edges,
            local_edges_total: 100,
            frozen_local: 4,
            frozen_corrected: 1,
            nonfrozen_edges_before: 600,
            nonfrozen_edges_after: 200,
        }
    }

    #[test]
    fn cost_report_from_trace_mirrors_summary() {
        let trace = mpc_sim::ExecutionTrace {
            rounds: vec![mpc_sim::RoundStats {
                label: "r".to_string(),
                max_sent: 7,
                max_received: 9,
                max_resident: 40,
                total_traffic: 16,
                spill_words: 5,
            }],
            violations: vec![],
            critical_path: Default::default(),
            events: vec![],
            faults: Default::default(),
        };
        let cluster = MpcConfig::new(4, 1024);
        let report = CostReport::from_trace(3, &trace, &cluster);
        assert_eq!(report.phases, 3);
        assert_eq!(report.mpc_rounds, 1);
        let t = report.traffic.expect("distributed runs carry traffic");
        assert_eq!(t.machines, 4);
        assert_eq!(t.memory_cap_words, 1024);
        assert_eq!(t.total_message_words, 16);
        assert_eq!(t.peak_round_words, 9);
        assert_eq!(t.peak_resident_words, 40);
        assert_eq!(t.violations, 0);
        assert_eq!(t.spill_words, 5);
        assert_eq!(t.checkpoint_words, 0);
        assert_eq!(t.replayed_rounds, 0);
    }

    #[test]
    fn round_accounting() {
        let r = MpcRunResult {
            cover: VertexCover::new(0, vec![]),
            certificate: DualCertificate::new(vec![]),
            phases: vec![phase(0, 50), phase(1, 80)],
            final_phase: Some(FinalPhaseStats {
                vertices: 3,
                edges: 2,
                iterations: 4,
            }),
            stalled: false,
            hit_max_phases: false,
        };
        assert_eq!(r.num_phases(), 2);
        assert_eq!(r.mpc_rounds(), 2 * 9 + 6);
        assert_eq!(r.peak_machine_edges_over_n(40), 2.0);
    }

    #[test]
    fn lemma_bound_formula() {
        let p = phase(0, 1);
        let b = p.lemma_4_4_bound(100, 0.1);
        assert!((b - 2.0 * 100.0 * 100.0 * 0.9f64.powi(3)).abs() < 1e-9);
    }
}
