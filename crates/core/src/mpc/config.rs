//! Configuration of the MPC simulation (Algorithm 2).
//!
//! Every constant of the paper's Algorithm 2 is a field here, with two
//! named profiles:
//!
//! * [`MpcMwvcConfig::paper`] — the literal constants of the paper:
//!   `V^high` cutoff `d^0.95`, `m = √d` machines,
//!   `I = log m / (10·log 15)` iterations, bias `2·m^{-0.2}·15^t·w'(v)`,
//!   switchover at `d ≤ log^30 n`. These are *asymptotic* constants: for
//!   any graph that fits in one computer, `I < 1` (so each phase runs a
//!   single compressed iteration) and `log^30 n` exceeds every realizable
//!   average degree (so the switchover fires immediately and everything is
//!   solved in the final centralized phase). The profile exists to show
//!   exactly that, and for the scaled-down coupling experiments.
//! * [`MpcMwvcConfig::practical`] — identical functional forms with
//!   constants chosen so that round compression is visible at
//!   `n ≤ 10^6`: more iterations per phase, lower `V^high` cutoff,
//!   smaller bias. EXPERIMENTS.md states per experiment which profile
//!   produced each table.
//!
//! **Bias growth note.** Algorithm 2 writes the estimator bias as
//! `2m^{-0.2}·15^t`; dimensional analysis of Definition 4.9 /
//! Corollary 4.12 (all bounds carry a `w'(v)` factor) shows the intended
//! term is `2m^{-0.2}·15^t·w'(v)`, which we implement. The growth base 15
//! is tied to the paper's iteration schedule: it equals
//! `m^{0.1/I}` when `I = log m/(10 log 15)`. We therefore parameterize the
//! bias as `coeff · m^{-exp} · g^t · w'(v)` with `g = m^{exp/(2I)}`, which
//! reproduces the literal 15 under the paper schedule and stays bounded
//! (`bias(I) = coeff·m^{-exp/2}·w'`) under any other schedule.

use crate::init::InitScheme;
use crate::thresholds::ThresholdScheme;
use mpc_sim::RoundScheduler;
use serde::{Deserialize, Serialize};

/// How many local iterations `I` a phase simulates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum IterationSchedule {
    /// The paper's `I = log m / (10 · log 15)`, floored, minimum 1.
    Paper,
    /// `I = ceil(scale · ln m)`, minimum 1.
    LogMachines {
        /// Multiplier on `ln m`.
        scale: f64,
    },
    /// `I = ceil(power · ln d / ln(1/(1-ε)))`, minimum 1 — chosen so that
    /// active out-degrees shrink by `(1-ε)^I ≈ d^{-power}` per phase
    /// (Observation 4.3 / Lemma 4.4 with a visible rate).
    DegreePower {
        /// Per-phase degree-reduction exponent.
        power: f64,
    },
}

impl IterationSchedule {
    /// Number of iterations for a phase with `machines` machines and
    /// current average degree `d`, given `epsilon`.
    pub fn iterations(&self, machines: usize, d: f64, epsilon: f64) -> usize {
        let m = machines.max(1) as f64;
        let i = match *self {
            IterationSchedule::Paper => (m.ln() / (10.0 * 15.0f64.ln())).floor(),
            IterationSchedule::LogMachines { scale } => (scale * m.ln()).ceil(),
            IterationSchedule::DegreePower { power } => {
                (power * d.max(2.0).ln() / (1.0 / (1.0 - epsilon)).ln()).ceil()
            }
        };
        (i as usize).max(1)
    }
}

/// The one-sided estimator bias (Algorithm 2 line 2(g)i).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BiasParams {
    /// Disable to reproduce the unbiased estimator of [GGK+18]
    /// (ablation E13).
    pub enabled: bool,
    /// Leading coefficient (paper: 2).
    pub coeff: f64,
    /// Machine-count exponent (paper: 0.2, as in `m^{-0.2}`).
    pub exponent: f64,
}

impl BiasParams {
    /// Bias fractions `bias(t)/w'(v)` for `t = 0..=iterations`, derived
    /// from the machine count (see the module docs for the growth-base
    /// derivation).
    ///
    /// With a single machine the local sum *is* the exact incident weight
    /// (no sampling noise to dominate), so the bias is zero — the paper
    /// never meets this case because `m = √d` is always large there.
    pub fn schedule(&self, machines: usize, iterations: usize) -> Vec<f64> {
        if !self.enabled || machines <= 1 {
            return vec![0.0; iterations + 1];
        }
        let m = (machines.max(1)) as f64;
        let base = self.coeff * m.powf(-self.exponent);
        let growth = m.powf(self.exponent / (2.0 * iterations.max(1) as f64));
        (0..=iterations)
            .map(|t| base * growth.powi(t as i32))
            .collect()
    }
}

/// When to stop the phase loop and solve the remainder centrally
/// (Algorithm 2 line 2 / line 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PhaseSwitch {
    /// The paper's literal `d ≤ log^30 n`.
    PaperLog30,
    /// `d ≤ value`.
    AvgDegree(f64),
    /// Remaining nonfrozen edges fit in a single machine of the given
    /// word budget (each edge costs ~3 words: endpoints + weight). This is
    /// the property the paper's `log^30 n` bound is used to establish.
    EdgeBudget {
        /// Machine memory in words.
        words: usize,
    },
}

impl PhaseSwitch {
    /// Whether to leave the phase loop given the current state.
    pub fn should_switch(&self, d: f64, n: usize, nonfrozen_edges: usize) -> bool {
        match *self {
            PhaseSwitch::PaperLog30 => {
                let ln = (n.max(2) as f64).ln() / 2.0f64.ln();
                d <= ln.powi(30)
            }
            PhaseSwitch::AvgDegree(v) => d <= v,
            PhaseSwitch::EdgeBudget { words } => 3 * nonfrozen_edges <= words,
        }
    }
}

/// Full configuration of Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MpcMwvcConfig {
    /// Accuracy parameter `ε ∈ (0, 1/4]`; the cover is `(2+30ε)`-approximate
    /// for `ε < 1/4`. The boundary value `ε = 1/4` is admitted for
    /// benchmarking the cheap-and-loose end of the accuracy spectrum: the
    /// algorithm and its certificate machinery stay sound there (every
    /// certified ratio is still a true a-posteriori bound), only the
    /// paper's a-priori constant is quoted for the open interval.
    pub epsilon: f64,
    /// Seed for all randomness (partitions, thresholds).
    pub seed: u64,
    /// Initial edge-weight scheme (paper: [`InitScheme::DegreeWeighted`]).
    pub init: InitScheme,
    /// Threshold scheme (paper: [`ThresholdScheme::UniformRandom`]).
    pub thresholds: ThresholdScheme,
    /// `V^high = {v : d(v) ≥ d^high_degree_exponent}` (paper: 0.95).
    pub high_degree_exponent: f64,
    /// `m = ceil(d^machine_exponent)` machines per phase (paper: 0.5).
    pub machine_exponent: f64,
    /// Iterations per phase.
    pub iterations: IterationSchedule,
    /// Estimator bias.
    pub bias: BiasParams,
    /// Switchover to the final centralized phase.
    pub switch: PhaseSwitch,
    /// Hard cap on phases (guards configurations that cannot progress).
    pub max_phases: usize,
    /// Host round-execution engine for the simulator cluster. No effect
    /// on model costs, covers, or certificates — only on how the host
    /// overlaps placement and compute.
    pub scheduler: RoundScheduler,
    /// Deterministic fault-injection plan for the simulator cluster
    /// (inactive by default). Covers and certificates are bit-identical
    /// under every recoverable plan; unrecoverable plans surface as
    /// typed errors through [`run_distributed`](super::run_distributed)'s
    /// `try_` form.
    pub faults: mpc_sim::FaultConfig,
}

impl MpcMwvcConfig {
    /// The paper's literal constants. See module docs for why this profile
    /// degenerates (by design) at laptop scale.
    pub fn paper(epsilon: f64, seed: u64) -> Self {
        Self {
            epsilon,
            seed,
            init: InitScheme::DegreeWeighted,
            thresholds: ThresholdScheme::UniformRandom,
            high_degree_exponent: 0.95,
            machine_exponent: 0.5,
            iterations: IterationSchedule::Paper,
            bias: BiasParams {
                enabled: true,
                coeff: 2.0,
                exponent: 0.2,
            },
            switch: PhaseSwitch::PaperLog30,
            max_phases: 1000,
            scheduler: RoundScheduler::Barrier,
            faults: mpc_sim::FaultConfig::none(),
        }
    }

    /// The paper's iteration schedule at its laptop-scale value (`I = 1`
    /// compressed iteration per phase — the literal
    /// `⌊log m/(10 log 15)⌋ ∨ 1` for every representable machine count),
    /// with the switchover lowered so that the full multi-phase structure
    /// of Algorithm 2 plays out instead of being absorbed by the final
    /// centralized phase. This is the profile that *exhibits the round
    /// structure* (experiments E01/E05/E09); [`Self::practical`] is the
    /// profile that *solves fastest*.
    pub fn paper_scaled(epsilon: f64, seed: u64) -> Self {
        Self {
            epsilon,
            seed,
            init: InitScheme::DegreeWeighted,
            thresholds: ThresholdScheme::UniformRandom,
            high_degree_exponent: 0.9,
            machine_exponent: 0.5,
            iterations: IterationSchedule::Paper,
            bias: BiasParams {
                enabled: true,
                coeff: 1.0,
                exponent: 0.5,
            },
            switch: PhaseSwitch::AvgDegree(2.0),
            max_phases: 300,
            scheduler: RoundScheduler::Barrier,
            faults: mpc_sim::FaultConfig::none(),
        }
    }

    /// Same functional forms, constants tuned so round compression is
    /// visible at experimental scale.
    pub fn practical(epsilon: f64, seed: u64) -> Self {
        Self {
            epsilon,
            seed,
            init: InitScheme::DegreeWeighted,
            thresholds: ThresholdScheme::UniformRandom,
            high_degree_exponent: 0.7,
            machine_exponent: 0.5,
            iterations: IterationSchedule::DegreePower { power: 0.3 },
            // coeff 1.0 ≈ the estimator's sampling noise scale d^{-1/4}
            // at m = √d, which keeps the estimate one-sided in practice
            // (~4% violations at d = 64..256, vs ~44% unbiased) at a
            // ~5% cover-weight premium; measured in experiment E13.
            bias: BiasParams {
                enabled: true,
                coeff: 1.0,
                exponent: 0.5,
            },
            switch: PhaseSwitch::AvgDegree(8.0),
            max_phases: 200,
            scheduler: RoundScheduler::Barrier,
            faults: mpc_sim::FaultConfig::none(),
        }
    }

    /// Machine count for a phase at average degree `d`.
    pub fn machines_for(&self, d: f64) -> usize {
        (d.max(1.0).powf(self.machine_exponent).round() as usize).max(1)
    }

    /// `V^high` degree cutoff for average degree `d`.
    pub fn high_degree_cutoff(&self, d: f64) -> f64 {
        d.max(1.0).powf(self.high_degree_exponent)
    }

    /// Switches the simulator to the given host round scheduler.
    pub fn with_scheduler(mut self, scheduler: RoundScheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Installs a deterministic fault-injection plan for the simulator
    /// cluster (see [`mpc_sim::FaultConfig`]).
    pub fn with_faults(mut self, faults: mpc_sim::FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Validates parameter ranges.
    pub fn validate(&self) {
        assert!(
            self.epsilon > 0.0 && self.epsilon <= 0.25,
            "epsilon must lie in (0, 1/4]"
        );
        assert!((0.0..=1.0).contains(&self.high_degree_exponent));
        assert!((0.0..=1.0).contains(&self.machine_exponent));
        assert!(self.max_phases >= 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_iteration_schedule_reproduces_constants() {
        // I = log m / (10 log 15). The first machine count with I = 2 is
        // m = 15^20 ≈ 3·10^23 — beyond the 64-bit address space, which is
        // the degeneracy the module docs describe. For every representable
        // m the paper schedule gives a single compressed iteration:
        for m in [100usize, 1 << 20, 15usize.pow(15)] {
            assert_eq!(IterationSchedule::Paper.iterations(m, 1e9, 0.1), 1);
        }
        // The functional form is still exercised via LogMachines: with
        // scale = 1/(10 ln 15), I matches the paper formula exactly.
        let scale = 1.0 / (10.0 * 15.0f64.ln());
        let m = 15usize.pow(15);
        let i = IterationSchedule::LogMachines { scale }.iterations(m, 1e9, 0.1);
        assert_eq!(i, 2, "ceil(15/10) = 2");
    }

    #[test]
    fn degree_power_schedule_hits_reduction_target() {
        let eps = 0.1;
        let d = 1024.0;
        let i = IterationSchedule::DegreePower { power: 0.25 }.iterations(32, d, eps);
        // (1-eps)^I should be ~ d^{-1/4}.
        let reduction = (1.0 - eps).powi(i as i32);
        let target = d.powf(-0.25);
        assert!(reduction <= target * 1.05, "{reduction} vs {target}");
        assert!(reduction >= target * (1.0 - eps) * 0.95);
    }

    #[test]
    fn paper_bias_growth_base_is_fifteen() {
        // Under the paper relation I = log m / (10 log 15), the derived
        // growth base m^{0.2/(2I)} equals exactly 15. Take m = 15^10, for
        // which that relation gives I = 1.
        let m = 15usize.pow(10);
        let i = 1usize;
        let bias = BiasParams {
            enabled: true,
            coeff: 2.0,
            exponent: 0.2,
        };
        let sched = bias.schedule(m, i);
        let ratio = sched[1] / sched[0];
        assert!(
            (ratio - 15.0).abs() < 1e-6,
            "derived growth base {ratio} should be 15 under the paper schedule"
        );
    }

    #[test]
    fn bias_disabled_is_zero() {
        let bias = BiasParams {
            enabled: false,
            coeff: 2.0,
            exponent: 0.2,
        };
        assert!(bias.schedule(100, 5).iter().all(|&b| b == 0.0));
    }

    #[test]
    fn bias_is_increasing_and_bounded() {
        let bias = BiasParams {
            enabled: true,
            coeff: 0.25,
            exponent: 0.5,
        };
        let m = 64;
        let i = 10;
        let sched = bias.schedule(m, i);
        assert_eq!(sched.len(), 11);
        for w in sched.windows(2) {
            assert!(w[0] < w[1]);
        }
        // bias(I) = coeff * m^{-exp/2}.
        let expected_end = 0.25 * (m as f64).powf(-0.25);
        assert!((sched[i] - expected_end).abs() < 1e-12);
    }

    #[test]
    fn switch_conditions() {
        assert!(PhaseSwitch::AvgDegree(8.0).should_switch(7.9, 1000, 99999));
        assert!(!PhaseSwitch::AvgDegree(8.0).should_switch(8.1, 1000, 99999));
        assert!(PhaseSwitch::EdgeBudget { words: 300 }.should_switch(1e9, 10, 100));
        assert!(!PhaseSwitch::EdgeBudget { words: 299 }.should_switch(1e9, 10, 100));
        // log2(2^20)^30 = 20^30 — astronomically large: always switches.
        assert!(PhaseSwitch::PaperLog30.should_switch(1e18, 1 << 20, 0));
    }

    #[test]
    fn machine_count_and_cutoff() {
        let cfg = MpcMwvcConfig::paper(0.1, 0);
        assert_eq!(cfg.machines_for(256.0), 16);
        assert_eq!(cfg.machines_for(0.5), 1);
        assert!((cfg.high_degree_cutoff(256.0) - 256.0f64.powf(0.95)).abs() < 1e-9);
    }

    #[test]
    fn profiles_validate() {
        MpcMwvcConfig::paper(0.1, 0).validate();
        MpcMwvcConfig::practical(0.05, 1).validate();
        MpcMwvcConfig::paper_scaled(0.1, 2).validate();
        // The benchmark matrix's loose end: ε = 1/4 is the admitted boundary.
        MpcMwvcConfig::practical(0.25, 3).validate();
    }

    #[test]
    fn paper_scaled_uses_single_iteration_phases() {
        let cfg = MpcMwvcConfig::paper_scaled(0.1, 0);
        for d in [8.0f64, 64.0, 1024.0] {
            let m = cfg.machines_for(d);
            assert_eq!(cfg.iterations.iterations(m, d, cfg.epsilon), 1);
        }
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn bad_epsilon_rejected() {
        MpcMwvcConfig::paper(0.4, 0).validate();
    }
}
