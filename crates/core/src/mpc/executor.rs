//! The executor abstraction: every MWVC algorithm in the tree that can
//! solve a weighted instance end to end plugs in behind [`Executor`], so
//! the benchmark harness, the experiment drivers, and future algorithm
//! crates compare like with like.
//!
//! # Contract
//!
//! An executor consumes a [`WeightedGraph`] and produces an
//! [`ExecutorOutcome`]:
//!
//! * a [`CoverCertificate`] — the vertex cover **plus** the per-edge dual
//!   values backing it. The cover must cover every edge; the certificate
//!   must be *sound* (rescaled into feasibility it never overstates the
//!   lower bound — see [`DualCertificate::lower_bound`]). Quality is
//!   always judged through this pair, never through trust,
//! * a [`CostReport`] — what the MPC model charges: phases (or
//!   compression levels), rounds, and — when the run went through the
//!   audited [`mpc_sim`] cluster — router-measured traffic and memory.
//!
//! Determinism: given the same instance and the executor's own
//! configuration (including its seed), `run` must be bit-identical across
//! invocations and host thread counts. The perf gate compares outcomes
//! byte-for-byte between pool widths, so this is enforced, not aspirational.
//!
//! # Adding an executor
//!
//! 1. Implement the algorithm in its own crate (or module) against the
//!    `mpc_sim` primitives if it is distributed, and give it a config
//!    type carrying `epsilon` and `seed`.
//! 2. Implement [`Executor`] for a small struct holding that config;
//!    `name()` must be a stable, lowercase identifier — it becomes part
//!    of benchmark workload ids and `BENCH_core.json` rows.
//! 3. Register the executor in `crates/bench`'s `ExecutorKind` so the
//!    workload matrix grows an entry per workload, then refresh
//!    `benchmarks/baseline.json` (the diff gate flags the new rows as
//!    missing until you do).
//!
//! The first two implementors live here ([`DistributedExecutor`],
//! [`ReferenceExecutor`]); the first *alternative algorithm* is the
//! round-compression executor in the `mwvc-roundcompress` crate.

use crate::certificate::DualCertificate;
use crate::cover::VertexCover;
use crate::mpc::config::MpcMwvcConfig;
use crate::mpc::distributed::{recommended_cluster, run_distributed, try_run_distributed};
use crate::mpc::reference::run_reference;
use crate::mpc::stats::CostReport;
use mwvc_graph::{EdgeIndex, WeightedGraph};

/// A vertex cover bundled with the dual certificate that backs it — the
/// common solution currency of every executor.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverCertificate {
    /// The vertex cover.
    pub cover: VertexCover,
    /// Per-edge dual values in global [`EdgeIndex`] order.
    pub certificate: DualCertificate,
}

impl CoverCertificate {
    /// Bundles a cover with its certificate.
    pub fn new(cover: VertexCover, certificate: DualCertificate) -> Self {
        Self { cover, certificate }
    }

    /// Cover weight on `wg`.
    pub fn weight(&self, wg: &WeightedGraph) -> f64 {
        self.cover.weight(wg)
    }

    /// The a-posteriori approximation ratio certified by the dual values
    /// (an upper bound on the true ratio to OPT).
    pub fn certified_ratio(&self, wg: &WeightedGraph, eidx: &EdgeIndex) -> f64 {
        self.certificate
            .certified_ratio(wg, eidx, self.cover.weight(wg))
    }

    /// Checks the full contract: the cover covers every edge and the
    /// certificate's rescaled lower bound is positive on nonempty inputs.
    pub fn verify(&self, wg: &WeightedGraph, eidx: &EdgeIndex) -> Result<(), String> {
        self.cover
            .verify(&wg.graph)
            .map_err(|e| format!("uncovered edge {e:?}"))?;
        if wg.num_edges() > 0 && self.certificate.lower_bound(wg, eidx) <= 0.0 {
            return Err("certificate carries no lower bound".into());
        }
        Ok(())
    }
}

/// Everything an executor run yields: the certified solution and the
/// model-side bill.
#[derive(Debug, Clone)]
pub struct ExecutorOutcome {
    /// The certified solution.
    pub solution: CoverCertificate,
    /// Model costs (rounds always; traffic when a router measured it).
    pub cost: CostReport,
    /// Deterministic critical-path statistics of the round schedule
    /// (zeroed when the run went through no audited cluster).
    pub critical_path: mpc_sim::CriticalPath,
    /// Host wall-clock seconds per MPC round (informational; empty when
    /// the run went through no audited cluster).
    pub round_wall: Vec<f64>,
    /// The full audited execution trace — per-round stats, violations,
    /// and the deterministic model-domain event stream the observability
    /// exporters render (empty when the run went through no audited
    /// cluster).
    pub trace: mpc_sim::ExecutionTrace,
    /// Host wall-clock per round split by phase (compute / route /
    /// spill). Informational, like `round_wall`; empty when the run went
    /// through no audited cluster.
    pub host_phases: Vec<mpc_sim::HostPhase>,
}

/// A complete MWVC algorithm the harness can run on any instance. See the
/// module docs for the contract.
///
/// # Examples
///
/// Every implementation runs the same way: hand it a weighted graph, get
/// back a certified cover plus the model-side bill. Quality is judged
/// through the certificate, never by trusting the cover:
///
/// ```
/// use mwvc_core::mpc::{DistributedExecutor, Executor, MpcMwvcConfig};
/// use mwvc_graph::{generators::gnm, EdgeIndex, WeightModel, WeightedGraph};
///
/// let graph = gnm(300, 2_400, 7);
/// let weights = WeightModel::Uniform { lo: 1.0, hi: 10.0 }.sample(&graph, 7);
/// let wg = WeightedGraph::new(graph, weights);
///
/// let exec = DistributedExecutor::new(MpcMwvcConfig::practical(0.1, 42));
/// assert_eq!(exec.name(), "distributed");
/// let out = exec.run(&wg);
///
/// let eidx = EdgeIndex::build(&wg.graph);
/// out.solution.verify(&wg, &eidx).expect("feasible, certified cover");
/// assert!(out.cost.mpc_rounds > 0);
/// ```
pub trait Executor {
    /// Stable lowercase identifier; appears in benchmark workload ids.
    fn name(&self) -> &'static str;

    /// Solves `wg` end to end. Must be deterministic in the executor's
    /// configuration (instance, seed) and independent of host threading.
    fn run(&self, wg: &WeightedGraph) -> ExecutorOutcome;

    /// Fault-tolerant form of [`Executor::run`]: unrecoverable injected
    /// faults surface as a typed [`mpc_sim::ClusterError`] instead of a
    /// panic. Executors that run on no audited cluster (and therefore
    /// see no injected faults) inherit this default, which never errs.
    /// Under any *handled* fault plan the outcome's gated fields must be
    /// bit-identical to the fault-free run.
    fn try_run(&self, wg: &WeightedGraph) -> Result<ExecutorOutcome, mpc_sim::ClusterError> {
        Ok(self.run(wg))
    }
}

/// Algorithm 2 as audited message-passing dataflow
/// ([`crate::mpc::distributed`]) on its recommended cluster.
#[derive(Debug, Clone, Copy)]
pub struct DistributedExecutor {
    /// Algorithm configuration.
    pub config: MpcMwvcConfig,
}

impl DistributedExecutor {
    /// Executor over `config`, sized by [`recommended_cluster`] at run
    /// time.
    pub fn new(config: MpcMwvcConfig) -> Self {
        Self { config }
    }
}

impl Executor for DistributedExecutor {
    fn name(&self) -> &'static str {
        "distributed"
    }

    fn run(&self, wg: &WeightedGraph) -> ExecutorOutcome {
        let cluster = recommended_cluster(wg, &self.config);
        let outcome = run_distributed(wg, &self.config, cluster);
        Self::package(outcome, &cluster)
    }

    fn try_run(&self, wg: &WeightedGraph) -> Result<ExecutorOutcome, mpc_sim::ClusterError> {
        let cluster = recommended_cluster(wg, &self.config);
        let outcome = try_run_distributed(wg, &self.config, cluster)?;
        Ok(Self::package(outcome, &cluster))
    }
}

impl DistributedExecutor {
    fn package(
        outcome: crate::mpc::distributed::DistributedOutcome,
        cluster: &mpc_sim::MpcConfig,
    ) -> ExecutorOutcome {
        let cost = outcome.cost_report(cluster);
        ExecutorOutcome {
            solution: CoverCertificate::new(outcome.cover, outcome.certificate),
            cost,
            critical_path: outcome.trace.critical_path.clone(),
            round_wall: outcome.round_wall,
            trace: outcome.trace,
            host_phases: outcome.host_phases,
        }
    }
}

/// Algorithm 2 in one address space ([`crate::mpc::reference`]): same
/// covers and certificates as [`DistributedExecutor`], rounds from the
/// [`crate::mpc::stats::round_cost`] model, no measured traffic.
#[derive(Debug, Clone, Copy)]
pub struct ReferenceExecutor {
    /// Algorithm configuration.
    pub config: MpcMwvcConfig,
}

impl ReferenceExecutor {
    /// Executor over `config`.
    pub fn new(config: MpcMwvcConfig) -> Self {
        Self { config }
    }
}

impl Executor for ReferenceExecutor {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn run(&self, wg: &WeightedGraph) -> ExecutorOutcome {
        let res = run_reference(wg, &self.config);
        let cost = res.cost_report();
        ExecutorOutcome {
            solution: CoverCertificate::new(res.cover, res.certificate),
            cost,
            critical_path: mpc_sim::CriticalPath::default(),
            round_wall: Vec::new(),
            trace: mpc_sim::ExecutionTrace::default(),
            host_phases: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwvc_graph::generators::gnm;
    use mwvc_graph::WeightModel;

    fn instance(n: usize, m: usize, seed: u64) -> WeightedGraph {
        let g = gnm(n, m, seed);
        let w = WeightModel::Uniform { lo: 1.0, hi: 5.0 }.sample(&g, seed ^ 7);
        WeightedGraph::new(g, w)
    }

    #[test]
    fn both_executors_satisfy_the_contract_and_agree() {
        let wg = instance(300, 4_800, 11);
        let cfg = MpcMwvcConfig::practical(0.1, 3);
        let dist = DistributedExecutor::new(cfg);
        let reference = ReferenceExecutor::new(cfg);
        assert_eq!(dist.name(), "distributed");
        assert_eq!(reference.name(), "reference");
        let a = dist.run(&wg);
        let b = reference.run(&wg);
        let eidx = EdgeIndex::build(&wg.graph);
        a.solution.verify(&wg, &eidx).expect("distributed contract");
        b.solution.verify(&wg, &eidx).expect("reference contract");
        // Same algorithm, same seed: identical covers, matching rounds.
        assert_eq!(a.solution.cover, b.solution.cover);
        assert_eq!(a.cost.phases, b.cost.phases);
        assert_eq!(a.cost.mpc_rounds, b.cost.mpc_rounds);
        // Only the audited executor carries traffic.
        assert!(a.cost.traffic.is_some());
        assert!(b.cost.traffic.is_none());
    }

    #[test]
    fn runs_are_deterministic_through_the_trait() {
        let wg = instance(200, 3_000, 23);
        let exec: Box<dyn Executor> =
            Box::new(DistributedExecutor::new(MpcMwvcConfig::practical(0.1, 9)));
        let a = exec.run(&wg);
        let b = exec.run(&wg);
        assert_eq!(a.solution, b.solution);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn cover_certificate_helpers() {
        let wg = instance(100, 1_500, 5);
        let eidx = EdgeIndex::build(&wg.graph);
        let out = ReferenceExecutor::new(MpcMwvcConfig::practical(0.1, 1)).run(&wg);
        let ratio = out.solution.certified_ratio(&wg, &eidx);
        assert!(ratio >= 1.0 - 1e-9 && ratio.is_finite());
        assert!(out.solution.weight(&wg) > 0.0);
    }
}
