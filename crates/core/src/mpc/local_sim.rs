//! Per-machine local simulation (Algorithm 2, line 2g).
//!
//! Given the subgraph induced by its part `V_i`, a machine simulates `I`
//! iterations of the centralized algorithm using only local information:
//! the total incident weight of a vertex is *estimated* from its local
//! neighbors, scaled by the machine count `m`, plus the one-sided bias
//! term:
//!
//! ```text
//! ỹ^MPC_{v,t} = bias(t)·w'(v) + m · Σ_{e∋v, e∈E[V_i]} x^MPC_{e,t}
//! ```
//!
//! freezing `v` when `ỹ^MPC_{v,t} ≥ T_{v,t}·w'(v)`.
//!
//! This module is shared verbatim by the in-memory reference executor and
//! the message-passing distributed executor, which is what makes their
//! differential testing meaningful: any divergence is in the orchestration,
//! not in the simulation arithmetic.

use mwvc_graph::VertexId;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Below this vertex count the per-iteration freeze scan runs inline:
/// the scan is O(k) with one threshold evaluation per active vertex, so
/// small instances cannot amortize a parallel drive. Both paths compute
/// the same pure function of the iteration state, so the cutover never
/// changes results.
const PARALLEL_SCAN_MIN_VERTICES: usize = 4096;

/// A local edge: endpoint positions within the machine's vertex list and
/// the initial dual value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalEdge {
    /// Index of one endpoint in [`LocalInstance::vertices`].
    pub u: u32,
    /// Index of the other endpoint.
    pub v: u32,
    /// `x^MPC_{e,0}` — the initial dual value.
    pub x0: f64,
}

/// Everything one machine holds for its local simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalInstance {
    /// Global ids of the machine's vertices, ascending.
    pub vertices: Vec<VertexId>,
    /// Residual weights `w'(v)`, parallel to `vertices`.
    pub residual_weights: Vec<f64>,
    /// Local edges in ascending global-edge-id order (canonical order is
    /// required for bit-reproducibility across executors).
    pub edges: Vec<LocalEdge>,
}

/// Simulation parameters for one phase.
#[derive(Debug, Clone, Copy)]
pub struct LocalSimParams<'a> {
    /// Accuracy parameter `ε`.
    pub epsilon: f64,
    /// Estimator multiplier `m` (the machine count).
    pub estimator_multiplier: f64,
    /// Iterations `I`.
    pub iterations: usize,
    /// Bias fractions `bias(t)/w'(v)` for `t = 0..iterations`.
    pub bias: &'a [f64],
}

/// Result: when each local vertex froze (`None` = survived all `I`
/// iterations).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalSimOutput {
    /// Freeze iteration per local vertex, parallel to
    /// [`LocalInstance::vertices`].
    pub freeze_iter: Vec<Option<u32>>,
}

/// Runs the local simulation. `threshold(global_vertex, t)` must be the
/// shared pure threshold function — every machine evaluates the same one
/// (and, since the freeze scan is host-parallel for large parts, it must
/// be `Sync`; the workspace's threshold schemes are pure functions of
/// `(seed, phase, vertex, t)`).
pub fn simulate_local(
    inst: &LocalInstance,
    params: LocalSimParams<'_>,
    threshold: impl Fn(VertexId, u32) -> f64 + Sync,
) -> LocalSimOutput {
    let k = inst.vertices.len();
    assert_eq!(inst.residual_weights.len(), k);
    assert!(params.bias.len() >= params.iterations);
    let growth = 1.0 / (1.0 - params.epsilon);
    let mult = params.estimator_multiplier;

    let mut active_sum0 = vec![0.0f64; k];
    let mut frozen_sum = vec![0.0f64; k];
    for e in &inst.edges {
        active_sum0[e.u as usize] += e.x0;
        active_sum0[e.v as usize] += e.x0;
    }
    let mut vertex_active = vec![true; k];
    let mut edge_frozen = vec![false; inst.edges.len()];
    let mut freeze_iter: Vec<Option<u32>> = vec![None; k];
    // Incident local edge ids per vertex, for freeze propagation.
    let mut incident: Vec<Vec<u32>> = vec![Vec::new(); k];
    for (eid, e) in inst.edges.iter().enumerate() {
        incident[e.u as usize].push(eid as u32);
        incident[e.v as usize].push(eid as u32);
    }

    let mut growth_t = 1.0f64;
    for t in 0..params.iterations as u32 {
        // Simultaneous freeze test (line 2(g)i). The scan reads only
        // pre-iteration state, so each vertex's verdict is independent —
        // for large parts it runs host-parallel (the threshold evaluation
        // dominates), gathered back in vertex order so the freeze set is
        // identical at any thread count.
        let crosses = |lv: usize| -> bool {
            if !vertex_active[lv] {
                return false;
            }
            let w = inst.residual_weights[lv];
            let y_est =
                params.bias[t as usize] * w + mult * (frozen_sum[lv] + active_sum0[lv] * growth_t);
            y_est >= threshold(inst.vertices[lv], t) * w
        };
        let to_freeze: Vec<u32> = if k >= PARALLEL_SCAN_MIN_VERTICES {
            let verdicts: Vec<bool> = (0..k).into_par_iter().map(crosses).collect();
            verdicts
                .into_iter()
                .enumerate()
                .filter_map(|(lv, f)| f.then_some(lv as u32))
                .collect()
        } else {
            (0..k)
                .filter(|&lv| crosses(lv))
                .map(|lv| lv as u32)
                .collect()
        };
        for &lv in &to_freeze {
            vertex_active[lv as usize] = false;
            freeze_iter[lv as usize] = Some(t);
        }
        for &lv in &to_freeze {
            for &leid in &incident[lv as usize] {
                if edge_frozen[leid as usize] {
                    continue;
                }
                edge_frozen[leid as usize] = true;
                let e = inst.edges[leid as usize];
                let x_now = e.x0 * growth_t;
                for z in [e.u, e.v] {
                    active_sum0[z as usize] -= e.x0;
                    frozen_sum[z as usize] += x_now;
                }
            }
        }
        // Lines 2(g)ii/iii via the lazy growth factor.
        growth_t *= growth;
    }

    LocalSimOutput { freeze_iter }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_bias(len: usize, v: f64) -> Vec<f64> {
        vec![v; len]
    }

    fn params(bias: &[f64], mult: f64, iters: usize) -> LocalSimParams<'_> {
        LocalSimParams {
            epsilon: 0.1,
            estimator_multiplier: mult,
            iterations: iters,
            bias,
        }
    }

    #[test]
    fn empty_instance_is_fine() {
        let inst = LocalInstance {
            vertices: vec![],
            residual_weights: vec![],
            edges: vec![],
        };
        let bias = flat_bias(5, 0.0);
        let out = simulate_local(&inst, params(&bias, 2.0, 5), |_, _| 0.9);
        assert!(out.freeze_iter.is_empty());
    }

    #[test]
    fn isolated_vertex_freezes_only_by_bias() {
        let inst = LocalInstance {
            vertices: vec![7],
            residual_weights: vec![10.0],
            edges: vec![],
        };
        // Bias below threshold: stays active.
        let bias = flat_bias(3, 0.1);
        let out = simulate_local(&inst, params(&bias, 4.0, 3), |_, _| 0.8);
        assert_eq!(out.freeze_iter, vec![None]);
        // Bias above threshold: freezes at t=0.
        let bias = flat_bias(3, 0.9);
        let out = simulate_local(&inst, params(&bias, 4.0, 3), |_, _| 0.8);
        assert_eq!(out.freeze_iter, vec![Some(0)]);
    }

    #[test]
    fn single_edge_freezes_when_estimate_crosses() {
        // Two vertices, one edge with x0 = 0.3, multiplier 1, weights 1.
        // y_t = 0.3 / 0.9^t; threshold 0.8: crosses at t where
        // 0.3*1.111^t >= 0.8 -> t >= ln(2.667)/ln(1.111) ~ 9.3 -> t = 10.
        let inst = LocalInstance {
            vertices: vec![0, 1],
            residual_weights: vec![1.0, 1.0],
            edges: vec![LocalEdge {
                u: 0,
                v: 1,
                x0: 0.3,
            }],
        };
        let bias = flat_bias(20, 0.0);
        let out = simulate_local(&inst, params(&bias, 1.0, 20), |_, _| 0.8);
        assert_eq!(out.freeze_iter[0], Some(10));
        assert_eq!(out.freeze_iter[1], Some(10));
    }

    #[test]
    fn frozen_edges_stop_growing() {
        // Path a-b-c. Vertex b has two incident edges; when a (cheap, low
        // threshold via weight) freezes early, edge (a,b) stops growing
        // while (b,c) continues.
        let inst = LocalInstance {
            vertices: vec![0, 1, 2],
            residual_weights: vec![0.1, 10.0, 10.0],
            edges: vec![
                LocalEdge {
                    u: 0,
                    v: 1,
                    x0: 0.05,
                },
                LocalEdge {
                    u: 1,
                    v: 2,
                    x0: 0.05,
                },
            ],
        };
        let bias = flat_bias(40, 0.0);
        let out = simulate_local(&inst, params(&bias, 1.0, 40), |_, _| 0.8);
        let fa = out.freeze_iter[0].expect("a freezes");
        // a freezes when 0.05/0.9^t >= 0.08: t >= 4.4 -> t=5.
        assert_eq!(fa, 5);
        // b needs y >= 8: with (a,b) frozen at ~0.085, (b,c) must reach
        // ~7.9 from 0.05: t ~ 48 > I -> b survives.
        assert_eq!(out.freeze_iter[1], None);
        assert_eq!(out.freeze_iter[2], None);
    }

    #[test]
    fn estimator_multiplier_scales_freezing() {
        let mk = |mult: f64| {
            let inst = LocalInstance {
                vertices: vec![0, 1],
                residual_weights: vec![1.0, 1.0],
                edges: vec![LocalEdge {
                    u: 0,
                    v: 1,
                    x0: 0.1,
                }],
            };
            let bias = flat_bias(25, 0.0);
            simulate_local(&inst, params(&bias, mult, 25), |_, _| 0.8).freeze_iter[0]
        };
        // mult 8: y_0 = 0.8 >= 0.8 -> immediate. mult 1: y grows from 0.1
        // to 0.8, crossing at t = ceil(ln 8 / ln(1/0.9)) = 20.
        assert_eq!(mk(8.0), Some(0));
        assert_eq!(mk(1.0), Some(20));
    }

    #[test]
    fn simultaneous_freezes_use_pre_iteration_state() {
        // Triangle where all three vertices cross at t=0: all freeze at 0,
        // none "sees" the others' freezing first.
        let inst = LocalInstance {
            vertices: vec![0, 1, 2],
            residual_weights: vec![1.0, 1.0, 1.0],
            edges: vec![
                LocalEdge {
                    u: 0,
                    v: 1,
                    x0: 0.5,
                },
                LocalEdge {
                    u: 0,
                    v: 2,
                    x0: 0.5,
                },
                LocalEdge {
                    u: 1,
                    v: 2,
                    x0: 0.5,
                },
            ],
        };
        let bias = flat_bias(5, 0.0);
        let out = simulate_local(&inst, params(&bias, 1.0, 5), |_, _| 0.9);
        assert_eq!(out.freeze_iter, vec![Some(0); 3]);
    }

    #[test]
    fn thresholds_receive_global_ids_and_iterations() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let inst = LocalInstance {
            vertices: vec![100, 200],
            residual_weights: vec![1.0, 1.0],
            edges: vec![LocalEdge {
                u: 0,
                v: 1,
                x0: 1e-6,
            }],
        };
        let bias = flat_bias(3, 0.0);
        let out = simulate_local(&inst, params(&bias, 1.0, 3), |v, t| {
            assert!(v == 100 || v == 200, "global id expected, got {v}");
            assert!(t < 3);
            calls.fetch_add(1, Ordering::Relaxed);
            0.9
        });
        assert_eq!(out.freeze_iter, vec![None, None]);
        assert_eq!(
            calls.load(Ordering::Relaxed),
            6,
            "2 vertices x 3 iterations"
        );
    }
}
