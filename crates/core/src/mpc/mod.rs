//! Algorithm 2: the MPC simulation for minimum weight vertex cover.
//!
//! Three executors of the same algorithm live here:
//!
//! * [`mod@reference`] — single-address-space execution of the exact phase
//!   schedule (the oracle and the large-scale workhorse),
//! * [`distributed`] — the same algorithm as actual message-passing
//!   dataflow on the [`mpc_sim`] cluster, with every model constraint
//!   (memory words, per-round traffic) enforced and recorded,
//! * [`coupling`] — the reference executor instrumented with the coupled
//!   centralized run of Lemma 4.6, measuring estimate deviations and
//!   bad-vertex rates.
//!
//! [`local_sim`] holds the per-machine simulation shared by all of them;
//! [`config`] holds every constant of the paper as a parameter.
//!
//! [`executor`] defines the crate-spanning [`Executor`] trait — the
//! contract every end-to-end MWVC algorithm (this one, and alternative
//! algorithms in other crates such as `mwvc-roundcompress`) implements so
//! the benchmark harness can compare them head to head.

pub mod config;
pub mod coupling;
pub mod distributed;
pub mod executor;
pub mod local_sim;
pub mod outofcore;
pub mod reference;
pub mod stats;

pub use config::{BiasParams, IterationSchedule, MpcMwvcConfig, PhaseSwitch};
pub use coupling::{run_coupled, CouplingReport, IterationDeviation};
pub use distributed::{
    recommended_cluster, run_distributed, try_run_distributed, DistributedOutcome,
};
pub use executor::{
    CoverCertificate, DistributedExecutor, Executor, ExecutorOutcome, ReferenceExecutor,
};
pub use outofcore::{run_outofcore, OocConfig, OocOutcome};
pub use reference::{run_reference, run_reference_observed, PhaseObserver, PhaseSnapshot};
pub use stats::{CostReport, FinalPhaseStats, MpcRunResult, PhaseStats, TrafficCosts};
