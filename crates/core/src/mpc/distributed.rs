//! Algorithm 2 executed as message-passing dataflow on an [`mpc_sim`]
//! cluster, with every model constraint enforced and every round recorded.
//!
//! # Roles
//!
//! Every machine plays up to four roles at once:
//!
//! * **edge home** — each edge `e` lives permanently on machine
//!   `owner_of_key(edge_id)`; homes hold the edge's dual state and caches
//!   of both endpoints' per-phase facts,
//! * **vertex owner** — each vertex `v` lives on `owner_of_key(v)`; owners
//!   hold the authoritative weight, residual weight, residual degree and
//!   frozen flag, plus the static list of homes subscribed to `v`
//!   (built once at startup from the edge distribution),
//! * **simulator** — during a phase with `m` machines, machines `0..m`
//!   receive the induced subgraphs of the random parts and run
//!   [`crate::mpc::local_sim::simulate_local`],
//! * **coordinator** — machine 0 aggregates global counters, decides the
//!   phase plan (Algorithm 2's loop condition) and runs the final
//!   centralized phase (line 3).
//!
//! # Round schedule
//!
//! One startup round, nine rounds per phase, five closing rounds:
//!
//! ```text
//! subscribe   homes → owners      (v, home, multiplicity); builds degrees
//! ── per phase ───────────────────────────────────────────────────────────
//! stats       homes → coord       active-edge partial counts (owners fold
//!                                 in last phase's deltas first)
//! plan        coord → all         RunPhase{m, I, cutoff} or Finish  (2,2e)
//! classify    owners → homes,sims V^high/V^inactive split, w', d(v) (2a,2b,2d)
//! route       homes → sims        induced-part edges with x_{e,0}    (2c,2f)
//! simulate    sims → owners       freeze iterations from local runs  (2g)
//! forward     owners → homes      freeze iterations fan-out
//! party       homes → owners      per-vertex partial Σ x^MPC_e       (2h)
//! correct     owners → homes      over-freeze corrections            (2i)
//! finalize    homes → owners      edge finalization + residual deltas(2j,2k)
//! ── closing ─────────────────────────────────────────────────────────────
//! stats, plan (coord decides Finish)
//! gather      homes,owners → coord  residual instance                (3)
//! solve       coord → owners        final freezes
//! apply       owners                 flags applied
//! ```
//!
//! The host only schedules closures and reads machine 0's broadcast
//! decision; all data flows through the audited router.

use crate::centralized::{run_centralized_raw, CentralizedParams};
use crate::certificate::DualCertificate;
use crate::cover::VertexCover;
use crate::mpc::config::{MpcMwvcConfig, PhaseSwitch};
use crate::mpc::local_sim::{simulate_local, LocalEdge, LocalInstance, LocalSimParams};
use crate::mpc::reference::partition_seed;
use crate::mpc::stats::FinalPhaseStats;
use mpc_sim::{owner_of_key, Cluster, ExecutionTrace, MpcConfig, SegmentRound, Words};
use mwvc_graph::{EdgeIndex, GraphBuilder, VertexId, VertexPartition, WeightedGraph};
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::collections::HashMap;

/// Vertex classes within a phase.
mod class {
    pub const HIGH: u8 = 1;
    pub const INACTIVE: u8 = 2;
}

/// Plan broadcast by the coordinator each phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct PlanMsg {
    phase: u32,
    kind: PlanKind,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum PlanKind {
    RunPhase {
        m: u32,
        iterations: u32,
        cutoff: f64,
        /// Residual maximum degree (for the `w/Δ` init scheme).
        delta: u32,
        /// Minimum nonfrozen residual weight (for the `1/n` init scheme).
        min_wp: f64,
    },
    Finish,
}

/// All messages of the dataflow. The phase plan — five scalars broadcast
/// `m` times per phase — is boxed so the rare fat variant does not size
/// every per-edge/per-vertex message on the wire; the hot variants stay
/// within 24 bytes (pinned below).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Msg {
    Subscribe {
        v: u32,
        home: u32,
        count: u32,
    },
    ActiveCount {
        count: u64,
    },
    OwnerStats {
        max_resid_deg: u32,
        min_wp: f64,
    },
    Plan(Box<PlanMsg>),
    VertexInfo {
        v: u32,
        class: u8,
        w_prime: f64,
        resid_deg: u32,
    },
    SimVertex {
        v: u32,
        w_prime: f64,
    },
    SimEdge {
        geid: u32,
        u: u32,
        v: u32,
        x0: f64,
    },
    FreezeIter {
        v: u32,
        t: u32,
    },
    PartialY {
        v: u32,
        y: f64,
    },
    FinalFrozen {
        v: u32,
    },
    Delta {
        v: u32,
        d_inc: f64,
        d_deg: u32,
    },
    FinalEdge {
        geid: u32,
        u: u32,
        v: u32,
    },
    FinalVertex {
        v: u32,
        w_prime: f64,
    },
    FrozenNotice {
        v: u32,
    },
}

impl Words for Msg {
    fn words(&self) -> usize {
        match self {
            Msg::Subscribe { .. } => 3,
            Msg::ActiveCount { .. } => 1,
            Msg::OwnerStats { .. } => 2,
            Msg::Plan(_) => 7,
            Msg::VertexInfo { .. } => 4,
            Msg::SimVertex { .. } => 2,
            Msg::SimEdge { .. } => 4,
            Msg::FreezeIter { .. } => 2,
            Msg::PartialY { .. } => 2,
            Msg::FinalFrozen { .. } => 1,
            Msg::Delta { .. } => 3,
            Msg::FinalEdge { .. } => 3,
            Msg::FinalVertex { .. } => 2,
            Msg::FrozenNotice { .. } => 1,
        }
    }
}

// The message ABI this executor puts on the fabric: the hot per-edge and
// per-vertex variants must stay small enough that a cache line holds at
// least two messages. Checked at compile time so a variant growing past
// the budget (or the boxed plan regressing to inline) fails the build.
const _: () = {
    assert!(
        std::mem::size_of::<Msg>() <= 24,
        "hot Msg variants must stay <= 24 bytes"
    );
    assert!(
        std::mem::size_of::<Msg>() < std::mem::size_of::<PlanMsg>() + 8,
        "the fat plan payload must stay boxed out of the hot ABI"
    );
};

/// Per-endpoint cache a home keeps for each of its edges.
#[derive(Debug, Clone, Copy, Default)]
struct EpCache {
    class: u8,
    w_prime: f64,
    resid_deg: u32,
    freeze_iter: u32,
    newly_frozen: bool,
}

/// An edge, as held by its home machine.
#[derive(Debug, Clone)]
struct HomeEdge {
    geid: u32,
    u: u32,
    v: u32,
    frozen: bool,
    x_final: f64,
    x0: f64,
    x_mpc: f64,
    u_cache: EpCache,
    v_cache: EpCache,
}

const HOME_EDGE_WORDS: usize = 17;

/// A vertex, as held by its owner machine.
#[derive(Debug, Clone)]
struct OwnedVertex {
    v: u32,
    weight: f64,
    frozen_inc: f64,
    resid_deg: u32,
    frozen: bool,
    subscribers: Vec<u32>,
    // Per-phase scratch.
    class: u8,
    w_prime: f64,
    freeze_iter: u32,
    partial_y: f64,
}

const OWNED_BASE_WORDS: usize = 10;

/// Coordinator-only state (machine 0).
#[derive(Debug, Clone, Default)]
struct CoordState {
    phase: u32,
    prev_active: Option<u64>,
    decision: Option<PlanKind>,
    stalled: bool,
    hit_max_phases: bool,
    final_edges: Vec<(u32, u32, u32)>,
    final_vertices: Vec<(u32, f64)>,
    final_edge_x: Vec<(u32, f64)>,
    final_cover: Vec<u32>,
    final_stats: Option<FinalPhaseStats>,
}

impl CoordState {
    fn words(&self) -> usize {
        8 + 3 * self.final_edges.len()
            + 2 * self.final_vertices.len()
            + 2 * self.final_edge_x.len()
            + self.final_cover.len()
    }
}

/// Full per-machine state. `Clone` is the snapshot operation of the
/// crash-recovery engine ([`mpc_sim::checkpoint`]): checkpoints clone the
/// state, and replay restores the clone.
#[derive(Clone)]
struct MachineState {
    n: usize,
    home_edges: Vec<HomeEdge>,
    /// vertex id → indices into `home_edges` (static).
    endpoint_index: HashMap<u32, Vec<u32>>,
    /// Owned vertices, ascending by id.
    owned: Vec<OwnedVertex>,
    active_edges_local: u64,
    plan: Option<PlanMsg>,
    sim_vertices: Vec<(u32, f64)>,
    sim_edges: Vec<(u32, u32, u32, f64)>,
    coord: Option<Box<CoordState>>,
}

impl Words for MachineState {
    fn words(&self) -> usize {
        let idx_words: usize = self.endpoint_index.values().map(|v| 1 + v.len()).sum();
        HOME_EDGE_WORDS * self.home_edges.len()
            + idx_words
            + self
                .owned
                .iter()
                .map(|o| OWNED_BASE_WORDS + o.subscribers.len())
                .sum::<usize>()
            + 2 * self.sim_vertices.len()
            + 4 * self.sim_edges.len()
            + self.plan.map_or(0, |_| 7)
            + self.coord.as_ref().map_or(0, |c| c.words())
            + 4
    }
}

impl MachineState {
    fn owned_mut(&mut self, v: u32) -> &mut OwnedVertex {
        let i = self
            .owned
            .binary_search_by_key(&v, |o| o.v)
            .expect("message for vertex not owned here");
        &mut self.owned[i]
    }
}

/// Result of a distributed run.
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    /// The vertex cover.
    pub cover: VertexCover,
    /// Finalized dual values in global edge-id order.
    pub certificate: DualCertificate,
    /// Compression phases executed.
    pub phases: usize,
    /// Whether the run stopped on the no-progress condition.
    pub stalled: bool,
    /// Whether the phase cap fired.
    pub hit_max_phases: bool,
    /// Final centralized phase statistics.
    pub final_stats: Option<FinalPhaseStats>,
    /// The audited execution trace: rounds, traffic, memory, violations.
    pub trace: ExecutionTrace,
    /// Host wall-clock seconds per MPC round, in execution order. Purely
    /// informational: host- and scheduler-dependent, never gated.
    pub round_wall: Vec<f64>,
    /// Host wall-clock per round split by phase (compute / route /
    /// spill), in execution order. Informational, like `round_wall`.
    pub host_phases: Vec<mpc_sim::HostPhase>,
}

impl DistributedOutcome {
    /// The structured model-cost report of this run, measured by the
    /// router of `cluster` (the config the run executed on).
    pub fn cost_report(&self, cluster: &MpcConfig) -> crate::mpc::stats::CostReport {
        crate::mpc::stats::CostReport::from_trace(self.phases, &self.trace, cluster)
    }
}

/// A cluster sizing that keeps the dataflow within the near-linear-memory
/// model for this instance and configuration: `S = Θ(n)` words plus
/// headroom for the final gathered instance, and enough machines both to
/// hold the input and to host the largest partition the phase schedule
/// can request.
pub fn recommended_cluster(wg: &WeightedGraph, config: &MpcMwvcConfig) -> MpcConfig {
    let n = wg.num_vertices();
    let e = wg.num_edges();
    let d0 = if n == 0 {
        0.0
    } else {
        2.0 * e as f64 / n as f64
    };
    let final_edges_cap = match config.switch {
        PhaseSwitch::PaperLog30 => e,
        PhaseSwitch::AvgDegree(t) => e.min(((t * n as f64) / 2.0).ceil() as usize),
        PhaseSwitch::EdgeBudget { words } => e.min(words / 3),
    };
    let s = (12 * n + 4 * (3 * final_edges_cap + 2 * n)).max(256);
    let input_words = 3 * e + 2 * n;
    let m0 = config.machines_for(d0);
    let machines = (12 * input_words).div_ceil(s).max(m0).max(2);
    MpcConfig::new(machines, s)
        .with_scheduler(config.scheduler)
        .with_faults(config.faults)
}

/// Runs Algorithm 2 as message-passing dataflow on `cluster_cfg`.
///
/// Panics (in strict enforcement) if any machine exceeds its memory or
/// per-round traffic budget; use [`recommended_cluster`] for a sizing that
/// stays within the model, or an audited config to measure violations.
/// Also panics on an unrecoverable injected fault — fault-tolerant callers
/// should use [`try_run_distributed`] instead.
pub fn run_distributed(
    wg: &WeightedGraph,
    config: &MpcMwvcConfig,
    cluster_cfg: MpcConfig,
) -> DistributedOutcome {
    try_run_distributed(wg, config, cluster_cfg)
        .unwrap_or_else(|e| panic!("unrecoverable cluster fault: {e}"))
}

/// Fault-tolerant form of [`run_distributed`]: identical execution, but
/// unrecoverable injected faults (spill retry budgets exhausted, replay
/// budgets exhausted, checkpoint I/O failures) surface as a typed
/// [`mpc_sim::ClusterError`] instead of panicking. Under any *handled*
/// fault plan the outcome's gated fields (cover, certificate, model
/// costs) are bit-identical to the fault-free run.
pub fn try_run_distributed(
    wg: &WeightedGraph,
    config: &MpcMwvcConfig,
    cluster_cfg: MpcConfig,
) -> Result<DistributedOutcome, mpc_sim::ClusterError> {
    config.validate();
    let n = wg.num_vertices();
    let eidx = EdgeIndex::build(&wg.graph);
    let m_total = eidx.num_edges();
    let w = cluster_cfg.num_machines;

    // ── Input distribution (free: "the input is divided arbitrarily
    // among all machines"). Edges go to owner_of_key(edge id), vertices
    // (with their weights) to owner_of_key(vertex id).
    let mut states: Vec<MachineState> = (0..w)
        .map(|id| MachineState {
            n,
            home_edges: Vec::new(),
            endpoint_index: HashMap::new(),
            owned: Vec::new(),
            active_edges_local: 0,
            plan: None,
            sim_vertices: Vec::new(),
            sim_edges: Vec::new(),
            coord: (id == 0).then(|| Box::new(CoordState::default())),
        })
        .collect();
    for (geid, e) in eidx.edges().iter().enumerate() {
        let home = owner_of_key(geid as u64, w);
        let st = &mut states[home];
        let idx = st.home_edges.len() as u32;
        st.home_edges.push(HomeEdge {
            geid: geid as u32,
            u: e.u(),
            v: e.v(),
            frozen: false,
            x_final: 0.0,
            x0: 0.0,
            x_mpc: 0.0,
            u_cache: EpCache::default(),
            v_cache: EpCache::default(),
        });
        st.endpoint_index.entry(e.u()).or_default().push(idx);
        st.endpoint_index.entry(e.v()).or_default().push(idx);
        st.active_edges_local += 1;
    }
    for v in 0..n as u32 {
        let owner = owner_of_key(v as u64, w);
        states[owner].owned.push(OwnedVertex {
            v,
            weight: wg.weights[v],
            frozen_inc: 0.0,
            resid_deg: 0,
            frozen: false,
            subscribers: Vec::new(),
            class: 0,
            w_prime: 0.0,
            freeze_iter: 0,
            partial_y: 0.0,
        });
    }
    // `owned` is ascending by construction (vertex ids visited in order).
    let mut cluster: Cluster<MachineState, Msg> = {
        let mut it = states.into_iter();
        Cluster::new(cluster_cfg, move |_| {
            it.next().expect("one state per machine")
        })
    };

    // ── Startup: homes announce themselves to every endpoint's owner.
    cluster.try_round("subscribe", move |ctx, st, _inbox| {
        let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
        for e in &st.home_edges {
            *counts.entry(e.u).or_default() += 1;
            *counts.entry(e.v).or_default() += 1;
        }
        ctx.reserve_sends(counts.len());
        for (v, count) in counts {
            ctx.send(
                owner_of_key(v as u64, ctx.num_machines()),
                Msg::Subscribe {
                    v,
                    home: ctx.id as u32,
                    count,
                },
            );
        }
    })?;

    let cfg = *config;
    loop {
        // stats+plan ride one segment: the host reads the coordinator's
        // decision only after both rounds have completed.
        let mut seg: Vec<SegmentRound<MachineState, Msg>> = Vec::new();
        // ── stats: owners fold in deltas/subscriptions; homes report
        // active-edge counts to the coordinator.
        seg.push(SegmentRound::new(
            "stats",
            move |ctx, st: &mut MachineState, inbox| {
                for msg in inbox {
                    match msg {
                        Msg::Subscribe { v, home, count } => {
                            let o = st.owned_mut(v);
                            o.subscribers.push(home);
                            o.resid_deg += count;
                        }
                        Msg::Delta { v, d_inc, d_deg } => {
                            let o = st.owned_mut(v);
                            o.frozen_inc += d_inc;
                            if !o.frozen {
                                o.resid_deg -= d_deg;
                            }
                        }
                        other => unreachable!("stats round got {other:?}"),
                    }
                }
                ctx.send(
                    0,
                    Msg::ActiveCount {
                        count: st.active_edges_local,
                    },
                );
                let mut max_resid_deg = 0u32;
                let mut min_wp = f64::INFINITY;
                for o in &st.owned {
                    if !o.frozen {
                        max_resid_deg = max_resid_deg.max(o.resid_deg);
                        min_wp = min_wp.min((o.weight - o.frozen_inc).max(0.0));
                    }
                }
                ctx.send(
                    0,
                    Msg::OwnerStats {
                        max_resid_deg,
                        min_wp,
                    },
                );
            },
        ));

        // ── plan: the coordinator evaluates the loop condition (2) and
        // broadcasts the phase parameters (2e) or Finish.
        seg.push(SegmentRound::new(
            "plan",
            move |ctx, st: &mut MachineState, inbox| {
                let Some(coord) = st.coord.as_mut() else {
                    assert!(inbox.is_empty());
                    return;
                };
                let mut total_active: u64 = 0;
                let mut delta = 0u32;
                let mut min_wp = f64::INFINITY;
                for m in inbox {
                    match m {
                        Msg::ActiveCount { count } => total_active += count,
                        Msg::OwnerStats {
                            max_resid_deg,
                            min_wp: mw,
                        } => {
                            delta = delta.max(max_resid_deg);
                            min_wp = min_wp.min(mw);
                        }
                        other => unreachable!("plan round got {other:?}"),
                    }
                }
                let d_avg = 2.0 * total_active as f64 / st.n.max(1) as f64;
                let switch = cfg.switch.should_switch(d_avg, st.n, total_active as usize);
                let stalled = coord.prev_active == Some(total_active) && total_active > 0;
                let over_cap = coord.phase as usize >= cfg.max_phases;
                let kind = if switch || stalled || over_cap {
                    coord.stalled = stalled && !switch;
                    coord.hit_max_phases = over_cap && !switch && !stalled;
                    PlanKind::Finish
                } else {
                    let m = cfg.machines_for(d_avg);
                    assert!(
                        m <= ctx.num_machines(),
                        "phase needs {m} simulator machines but the cluster has {}; \
                     use recommended_cluster()",
                        ctx.num_machines()
                    );
                    let iterations = cfg.iterations.iterations(m, d_avg, cfg.epsilon);
                    PlanKind::RunPhase {
                        m: m as u32,
                        iterations: iterations as u32,
                        cutoff: cfg.high_degree_cutoff(d_avg),
                        delta,
                        min_wp,
                    }
                };
                coord.prev_active = Some(total_active);
                coord.decision = Some(kind);
                let phase = coord.phase;
                ctx.broadcast(Msg::Plan(Box::new(PlanMsg { phase, kind })));
            },
        ));
        cluster.try_run_segment(seg)?;

        let decision = cluster
            .state(0)
            .coord
            .as_ref()
            .and_then(|c| c.decision)
            .expect("coordinator always decides");

        match decision {
            PlanKind::RunPhase { .. } => run_phase_rounds(&mut cluster, &cfg)?,
            PlanKind::Finish => {
                run_final_rounds(&mut cluster, &cfg)?;
                break;
            }
        }
    }

    // ── Assembly: the output lives distributed across machines; gather
    // it host-parallel by ownership. Every vertex has exactly one owner
    // and every edge one home (both `owned` and `home_edges` are kept
    // ascending by id), so each output slot has a unique source and the
    // gather is deterministic under any scheduling.
    let round_wall = cluster.round_wall().to_vec();
    let host_phases = cluster.host_phases().to_vec();
    let (states, trace) = cluster.finish();
    let membership: Vec<bool> = (0..n)
        .into_par_iter()
        .map(|v| {
            let st = &states[owner_of_key(v as u64, w)];
            let i = st
                .owned
                .binary_search_by_key(&(v as u32), |o| o.v)
                .expect("every vertex has an owner");
            st.owned[i].frozen
        })
        .collect();
    let mut edge_x: Vec<f64> = (0..m_total)
        .into_par_iter()
        .map(|geid| {
            let st = &states[owner_of_key(geid as u64, w)];
            let i = st
                .home_edges
                .binary_search_by_key(&(geid as u32), |e| e.geid)
                .expect("every edge has a home");
            let e = &st.home_edges[i];
            if e.frozen {
                e.x_final
            } else {
                0.0
            }
        })
        .collect();
    let mut phases = 0usize;
    let mut stalled = false;
    let mut hit_max_phases = false;
    let mut final_stats = None;
    if let Some(c) = states.iter().find_map(|st| st.coord.as_deref()) {
        phases = c.phase as usize;
        stalled = c.stalled;
        hit_max_phases = c.hit_max_phases;
        final_stats = c.final_stats;
        for &(geid, x) in &c.final_edge_x {
            edge_x[geid as usize] = x;
        }
    }
    Ok(DistributedOutcome {
        cover: VertexCover::from_membership(membership),
        certificate: DualCertificate::new(edge_x),
        phases,
        stalled,
        hit_max_phases,
        final_stats,
        trace,
        round_wall,
        host_phases,
    })
}

/// The seven phase rounds after `plan`.
fn run_phase_rounds(
    cluster: &mut Cluster<MachineState, Msg>,
    cfg: &MpcMwvcConfig,
) -> Result<(), mpc_sim::ClusterError> {
    let cfg = *cfg;
    let mut seg: Vec<SegmentRound<MachineState, Msg>> = Vec::new();

    // ── classify (2a, 2b, 2d): owners split V^high/V^inactive, push
    // per-vertex facts to subscribed homes and vertex lists to simulators.
    seg.push(SegmentRound::new(
        "classify",
        move |ctx, st: &mut MachineState, inbox| {
            for msg in inbox {
                match msg {
                    Msg::Plan(p) => st.plan = Some(*p),
                    other => unreachable!("classify got {other:?}"),
                }
            }
            let plan = st.plan.expect("plan broadcast precedes classify");
            let PlanKind::RunPhase { m, cutoff, .. } = plan.kind else {
                unreachable!("phase rounds run only under RunPhase");
            };
            let part_seed = partition_seed(cfg.seed, plan.phase as usize);
            for i in 0..st.owned.len() {
                let (v, frozen) = (st.owned[i].v, st.owned[i].frozen);
                if frozen {
                    continue;
                }
                let o = &mut st.owned[i];
                o.w_prime = (o.weight - o.frozen_inc).max(0.0);
                o.class = if (o.resid_deg as f64) >= cutoff {
                    class::HIGH
                } else {
                    class::INACTIVE
                };
                o.freeze_iter = u32::MAX;
                o.partial_y = 0.0;
                let info = Msg::VertexInfo {
                    v,
                    class: o.class,
                    w_prime: o.w_prime,
                    resid_deg: o.resid_deg,
                };
                for &home in &o.subscribers {
                    ctx.send(home as usize, info.clone());
                }
                if o.class == class::HIGH {
                    let part = VertexPartition::part_of_vertex(v, m as usize, part_seed);
                    let w_prime = o.w_prime;
                    ctx.send(part, Msg::SimVertex { v, w_prime });
                }
            }
        },
    ));

    // ── route (2c, 2f): homes refresh endpoint caches, compute x_{e,0}
    // and ship part-internal E[V^high] edges to their simulators.
    seg.push(SegmentRound::new(
        "route",
        move |ctx, st: &mut MachineState, inbox| {
            for msg in inbox {
                match msg {
                    Msg::VertexInfo {
                        v,
                        class,
                        w_prime,
                        resid_deg,
                    } => {
                        // Split borrow: the static index is read-only while
                        // the edges it points at are updated.
                        let MachineState {
                            endpoint_index,
                            home_edges,
                            ..
                        } = &mut *st;
                        if let Some(idxs) = endpoint_index.get(&v) {
                            for &i in idxs {
                                let e = &mut home_edges[i as usize];
                                let cache = if e.u == v {
                                    &mut e.u_cache
                                } else {
                                    &mut e.v_cache
                                };
                                *cache = EpCache {
                                    class,
                                    w_prime,
                                    resid_deg,
                                    freeze_iter: u32::MAX,
                                    newly_frozen: false,
                                };
                            }
                        }
                    }
                    Msg::SimVertex { v, w_prime } => st.sim_vertices.push((v, w_prime)),
                    other => unreachable!("route got {other:?}"),
                }
            }
            let plan = st.plan.expect("plan is set");
            let PlanKind::RunPhase {
                m, delta, min_wp, ..
            } = plan.kind
            else {
                unreachable!();
            };
            let part_seed = partition_seed(cfg.seed, plan.phase as usize);
            let n = st.n;
            for e in &mut st.home_edges {
                if e.frozen || e.u_cache.class != class::HIGH || e.v_cache.class != class::HIGH {
                    continue;
                }
                e.x0 = cfg.init.phase_value(
                    e.u_cache.w_prime,
                    e.u_cache.resid_deg as usize,
                    e.v_cache.w_prime,
                    e.v_cache.resid_deg as usize,
                    delta as usize,
                    min_wp,
                    n,
                );
                let pu = VertexPartition::part_of_vertex(e.u, m as usize, part_seed);
                let pv = VertexPartition::part_of_vertex(e.v, m as usize, part_seed);
                if pu == pv {
                    ctx.send(
                        pu,
                        Msg::SimEdge {
                            geid: e.geid,
                            u: e.u,
                            v: e.v,
                            x0: e.x0,
                        },
                    );
                }
            }
        },
    ));

    // ── simulate (2g): simulators assemble their LocalInstance and run I
    // compressed iterations, reporting freeze times to vertex owners.
    seg.push(SegmentRound::new(
        "simulate",
        move |ctx, st: &mut MachineState, inbox| {
            for msg in inbox {
                match msg {
                    Msg::SimEdge { geid, u, v, x0 } => st.sim_edges.push((geid, u, v, x0)),
                    other => unreachable!("simulate got {other:?}"),
                }
            }
            let plan = st.plan.expect("plan is set");
            let PlanKind::RunPhase { m, iterations, .. } = plan.kind else {
                unreachable!();
            };
            let iterations = iterations as usize;
            if !st.sim_vertices.is_empty() {
                st.sim_vertices.sort_unstable_by_key(|&(v, _)| v);
                st.sim_edges.sort_unstable_by_key(|&(geid, ..)| geid);
                let vertices: Vec<VertexId> = st.sim_vertices.iter().map(|&(v, _)| v).collect();
                let residual_weights: Vec<f64> = st.sim_vertices.iter().map(|&(_, w)| w).collect();
                let pos = |v: u32| -> u32 {
                    vertices
                        .binary_search(&v)
                        .expect("edge endpoint was announced by its owner")
                        as u32
                };
                let edges: Vec<LocalEdge> = st
                    .sim_edges
                    .iter()
                    .map(|&(_, u, v, x0)| LocalEdge {
                        u: pos(u),
                        v: pos(v),
                        x0,
                    })
                    .collect();
                let inst = LocalInstance {
                    vertices,
                    residual_weights,
                    edges,
                };
                let bias = cfg.bias.schedule(m as usize, iterations);
                let out = simulate_local(
                    &inst,
                    LocalSimParams {
                        epsilon: cfg.epsilon,
                        estimator_multiplier: m as f64,
                        iterations,
                        bias: &bias,
                    },
                    |gv, t| {
                        cfg.thresholds
                            .threshold(cfg.epsilon, cfg.seed, plan.phase as u64, gv, t)
                    },
                );
                for (i, f) in out.freeze_iter.iter().enumerate() {
                    let v = inst.vertices[i];
                    let t = f.unwrap_or(iterations as u32);
                    ctx.send(
                        owner_of_key(v as u64, ctx.num_machines()),
                        Msg::FreezeIter { v, t },
                    );
                }
            }
            st.sim_vertices.clear();
            st.sim_edges.clear();
        },
    ));

    // ── forward: owners record local-sim freeze times and fan them out to
    // subscribed homes.
    seg.push(SegmentRound::new(
        "forward",
        move |ctx, st: &mut MachineState, inbox| {
            for msg in inbox {
                match msg {
                    Msg::FreezeIter { v, t } => {
                        let o = st.owned_mut(v);
                        o.freeze_iter = t;
                        for &home in &o.subscribers {
                            ctx.send(home as usize, Msg::FreezeIter { v, t });
                        }
                    }
                    other => unreachable!("forward got {other:?}"),
                }
            }
        },
    ));

    // ── party (2h): homes price every E[V^high] edge (cross-partition
    // included) and report partial incident sums for still-active
    // endpoints.
    let growth_cfg = 1.0 / (1.0 - cfg.epsilon);
    seg.push(SegmentRound::new(
        "party",
        move |ctx, st: &mut MachineState, inbox| {
            for msg in inbox {
                match msg {
                    Msg::FreezeIter { v, t } => {
                        let MachineState {
                            endpoint_index,
                            home_edges,
                            ..
                        } = &mut *st;
                        if let Some(idxs) = endpoint_index.get(&v) {
                            for &i in idxs {
                                let e = &mut home_edges[i as usize];
                                if e.u == v {
                                    e.u_cache.freeze_iter = t;
                                } else {
                                    e.v_cache.freeze_iter = t;
                                }
                            }
                        }
                    }
                    other => unreachable!("party got {other:?}"),
                }
            }
            let plan = st.plan.expect("plan is set");
            let PlanKind::RunPhase { iterations, .. } = plan.kind else {
                unreachable!();
            };
            let mut partials: BTreeMap<u32, f64> = BTreeMap::new();
            for e in &mut st.home_edges {
                if e.frozen || e.u_cache.class != class::HIGH || e.v_cache.class != class::HIGH {
                    continue;
                }
                let fu = e.u_cache.freeze_iter.min(iterations);
                let fv = e.v_cache.freeze_iter.min(iterations);
                let t_prime = fu.min(fv);
                e.x_mpc = e.x0 * growth_cfg.powi(t_prime as i32);
                if fu == iterations {
                    *partials.entry(e.u).or_default() += e.x_mpc;
                }
                if fv == iterations {
                    *partials.entry(e.v).or_default() += e.x_mpc;
                }
            }
            for (v, y) in partials {
                ctx.send(
                    owner_of_key(v as u64, ctx.num_machines()),
                    Msg::PartialY { v, y },
                );
            }
        },
    ));

    // ── correct (2i): owners decide the final freeze set of the phase.
    seg.push(SegmentRound::new(
        "correct",
        move |ctx, st: &mut MachineState, inbox| {
            for msg in inbox {
                match msg {
                    Msg::PartialY { v, y } => st.owned_mut(v).partial_y += y,
                    other => unreachable!("correct got {other:?}"),
                }
            }
            let plan = st.plan.expect("plan is set");
            let PlanKind::RunPhase { iterations, .. } = plan.kind else {
                unreachable!();
            };
            for i in 0..st.owned.len() {
                let o = &st.owned[i];
                if o.frozen || o.class != class::HIGH {
                    continue;
                }
                let froze_locally = o.freeze_iter < iterations;
                let corrected = !froze_locally && o.partial_y >= o.w_prime;
                if froze_locally || corrected {
                    let o = &mut st.owned[i];
                    o.frozen = true;
                    let v = o.v;
                    for &home in &o.subscribers {
                        ctx.send(home as usize, Msg::FinalFrozen { v });
                    }
                }
            }
        },
    ));

    // ── finalize (2j, 2k): homes finalize dual values of frozen edges and
    // push residual-weight/degree deltas back to owners; the coordinator
    // advances its phase counter.
    seg.push(SegmentRound::new(
        "finalize",
        move |ctx, st: &mut MachineState, inbox| {
            for msg in inbox {
                match msg {
                    Msg::FinalFrozen { v } => {
                        let MachineState {
                            endpoint_index,
                            home_edges,
                            ..
                        } = &mut *st;
                        if let Some(idxs) = endpoint_index.get(&v) {
                            for &i in idxs {
                                let e = &mut home_edges[i as usize];
                                if e.u == v {
                                    e.u_cache.newly_frozen = true;
                                } else {
                                    e.v_cache.newly_frozen = true;
                                }
                            }
                        }
                    }
                    other => unreachable!("finalize got {other:?}"),
                }
            }
            let mut deltas: BTreeMap<u32, (f64, u32)> = BTreeMap::new();
            for e in &mut st.home_edges {
                if e.frozen || (!e.u_cache.newly_frozen && !e.v_cache.newly_frozen) {
                    continue;
                }
                // Newly frozen endpoints are always HIGH; if the other side is
                // inactive this is a line (2j) zero-weight freeze.
                let both_high = e.u_cache.class == class::HIGH && e.v_cache.class == class::HIGH;
                e.frozen = true;
                e.x_final = if both_high { e.x_mpc } else { 0.0 };
                st.active_edges_local -= 1;
                let du = deltas.entry(e.u).or_default();
                du.0 += e.x_final;
                du.1 += u32::from(e.v_cache.newly_frozen);
                let dv = deltas.entry(e.v).or_default();
                dv.0 += e.x_final;
                dv.1 += u32::from(e.u_cache.newly_frozen);
            }
            for (v, (d_inc, d_deg)) in deltas {
                ctx.send(
                    owner_of_key(v as u64, ctx.num_machines()),
                    Msg::Delta { v, d_inc, d_deg },
                );
            }
            if let Some(coord) = st.coord.as_mut() {
                coord.phase += 1;
            }
        },
    ));

    cluster.try_run_segment(seg)
}

/// The three closing rounds after a `Finish` plan.
fn run_final_rounds(
    cluster: &mut Cluster<MachineState, Msg>,
    cfg: &MpcMwvcConfig,
) -> Result<(), mpc_sim::ClusterError> {
    let cfg = *cfg;
    let mut seg: Vec<SegmentRound<MachineState, Msg>> = Vec::new();

    // ── gather (3): the residual instance moves to the coordinator.
    seg.push(SegmentRound::new(
        "gather",
        move |ctx, st: &mut MachineState, inbox| {
            for msg in inbox {
                match msg {
                    Msg::Plan(p) => st.plan = Some(*p),
                    other => unreachable!("gather got {other:?}"),
                }
            }
            ctx.reserve_sends(st.active_edges_local as usize);
            for e in &st.home_edges {
                if !e.frozen {
                    ctx.send(
                        0,
                        Msg::FinalEdge {
                            geid: e.geid,
                            u: e.u,
                            v: e.v,
                        },
                    );
                }
            }
            for o in &st.owned {
                if !o.frozen {
                    ctx.send(
                        0,
                        Msg::FinalVertex {
                            v: o.v,
                            w_prime: (o.weight - o.frozen_inc).max(0.0),
                        },
                    );
                }
            }
        },
    ));

    // ── solve (3): one machine runs the centralized algorithm on the
    // residual instance (local computation is free) and reports freezes.
    seg.push(SegmentRound::new(
        "solve",
        move |ctx, st: &mut MachineState, inbox| {
            let Some(coord) = st.coord.as_mut() else {
                assert!(inbox.is_empty());
                return;
            };
            for msg in inbox {
                match msg {
                    Msg::FinalEdge { geid, u, v } => coord.final_edges.push((geid, u, v)),
                    Msg::FinalVertex { v, w_prime } => coord.final_vertices.push((v, w_prime)),
                    other => unreachable!("solve got {other:?}"),
                }
            }
            if coord.final_edges.is_empty() {
                return;
            }
            coord.final_vertices.sort_unstable_by_key(|&(v, _)| v);
            coord.final_edges.sort_unstable_by_key(|&(geid, ..)| geid);
            let rest: Vec<u32> = coord.final_vertices.iter().map(|&(v, _)| v).collect();
            let wp: Vec<f64> = coord.final_vertices.iter().map(|&(_, w)| w).collect();
            let pos =
                |v: u32| -> u32 { rest.binary_search(&v).expect("endpoint is nonfrozen") as u32 };
            let mut builder = GraphBuilder::new(rest.len());
            for &(_, u, v) in &coord.final_edges {
                builder.add_edge(pos(u), pos(v));
            }
            let f_graph = builder.build();
            let f_eidx = EdgeIndex::build(&f_graph);
            let fdeg: Vec<usize> = f_graph.vertices().map(|v| f_graph.degree(v)).collect();
            let x0 = cfg.init.initial_values(&f_graph, &f_eidx, &wp, &fdeg);
            let phase_key = coord.phase as u64 + 1_000_000;
            let res = run_centralized_raw(
                &f_graph,
                &f_eidx,
                &wp,
                x0,
                CentralizedParams::new(cfg.epsilon),
                |lv, t| {
                    cfg.thresholds
                        .threshold(cfg.epsilon, cfg.seed, phase_key, rest[lv as usize], t)
                },
            );
            // Map local edge values back to global edge ids. `final_edges` is
            // sorted by global edge id, i.e. lexicographically by global
            // endpoints; the local canonical order is lexicographic in the
            // remapped endpoints, and the remap is monotone — so position i in
            // one list is position i in the other.
            debug_assert_eq!(f_eidx.num_edges(), coord.final_edges.len());
            for (feid, fe) in f_eidx.edges().iter().enumerate() {
                let (geid, gu, gv) = coord.final_edges[feid];
                debug_assert_eq!(
                    (gu.min(gv), gu.max(gv)),
                    (rest[fe.u() as usize], rest[fe.v() as usize]),
                    "canonical edge orders must align"
                );
                coord.final_edge_x.push((geid, res.certificate.x[feid]));
            }
            for &lv in res.cover.vertices() {
                let v = rest[lv as usize];
                coord.final_cover.push(v);
                ctx.send(
                    owner_of_key(v as u64, ctx.num_machines()),
                    Msg::FrozenNotice { v },
                );
            }
            coord.final_stats = Some(FinalPhaseStats {
                vertices: rest.len(),
                edges: f_eidx.num_edges(),
                iterations: res.iterations,
            });
        },
    ));

    // ── apply: owners flip the final frozen flags.
    seg.push(SegmentRound::new(
        "apply",
        move |_ctx, st: &mut MachineState, inbox| {
            for msg in inbox {
                match msg {
                    Msg::FrozenNotice { v } => st.owned_mut(v).frozen = true,
                    other => unreachable!("apply got {other:?}"),
                }
            }
        },
    ));

    cluster.try_run_segment(seg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpc::reference::run_reference;
    use crate::mpc::stats::round_cost;
    use mwvc_graph::generators::{gnm, gnp};
    use mwvc_graph::{Graph, WeightModel};

    const EPS: f64 = 0.1;

    fn instance(n: usize, m: usize, seed: u64) -> WeightedGraph {
        let g = gnm(n, m, seed);
        let w = WeightModel::Uniform { lo: 1.0, hi: 6.0 }.sample(&g, seed ^ 1);
        WeightedGraph::new(g, w)
    }

    #[test]
    fn distributed_matches_reference() {
        let wg = instance(600, 9_600, 5); // d = 32
        let cfg = MpcMwvcConfig::practical(EPS, 17);
        let cluster = recommended_cluster(&wg, &cfg);
        let dist = run_distributed(&wg, &cfg, cluster);
        let reference = run_reference(&wg, &cfg);
        assert_eq!(dist.phases, reference.num_phases());
        assert_eq!(dist.cover, reference.cover, "covers must agree");
        assert_eq!(dist.certificate.x.len(), reference.certificate.x.len());
        for (a, b) in dist.certificate.x.iter().zip(&reference.certificate.x) {
            assert!(
                (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs())),
                "edge dual values diverged: {a} vs {b}"
            );
        }
        assert_eq!(dist.stalled, reference.stalled);
        assert!(dist.trace.is_clean(), "no model violations expected");
    }

    #[test]
    fn cover_is_valid_and_certified() {
        let wg = instance(400, 6_400, 9);
        let cfg = MpcMwvcConfig::practical(EPS, 3);
        let dist = run_distributed(&wg, &cfg, recommended_cluster(&wg, &cfg));
        dist.cover.verify(&wg.graph).expect("valid cover");
        let eidx = EdgeIndex::build(&wg.graph);
        let ratio = dist
            .certificate
            .certified_ratio(&wg, &eidx, dist.cover.weight(&wg));
        assert!(ratio <= 2.0 + 30.0 * EPS, "certified ratio {ratio}");
    }

    #[test]
    fn round_count_matches_cost_model() {
        let wg = instance(500, 8_000, 13);
        let cfg = MpcMwvcConfig::practical(EPS, 29);
        let cluster = recommended_cluster(&wg, &cfg);
        let dist = run_distributed(&wg, &cfg, cluster);
        assert_eq!(
            dist.trace.num_rounds(),
            dist.phases * round_cost::PER_PHASE + round_cost::FINAL,
            "trace rounds vs cost model (phases = {})",
            dist.phases
        );
        assert!(dist.phases >= 1);
        // The structured report agrees with the raw trace and cluster.
        let report = dist.cost_report(&cluster);
        assert_eq!(report.phases, dist.phases);
        assert_eq!(report.mpc_rounds, dist.trace.num_rounds());
        let t = report.traffic.expect("distributed runs carry traffic");
        assert_eq!(t.total_message_words, dist.trace.total_traffic());
        assert_eq!(t.peak_resident_words, dist.trace.peak_resident());
        assert_eq!(t.machines, cluster.num_machines);
        assert_eq!(t.violations, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let wg = instance(300, 4_800, 21);
        let cfg = MpcMwvcConfig::practical(EPS, 5);
        let cluster = recommended_cluster(&wg, &cfg);
        let a = run_distributed(&wg, &cfg, cluster);
        let b = run_distributed(&wg, &cfg, cluster);
        assert_eq!(a.cover, b.cover);
        assert_eq!(a.certificate, b.certificate);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn paper_profile_goes_straight_to_final_phase() {
        let wg = instance(200, 2_000, 31);
        let cfg = MpcMwvcConfig::paper(EPS, 7);
        let dist = run_distributed(&wg, &cfg, recommended_cluster(&wg, &cfg));
        assert_eq!(dist.phases, 0);
        assert!(dist.final_stats.is_some());
        dist.cover.verify(&wg.graph).expect("valid cover");
        let reference = run_reference(&wg, &cfg);
        assert_eq!(dist.cover, reference.cover);
    }

    #[test]
    fn empty_graph_handled() {
        let wg = WeightedGraph::unweighted(Graph::empty(50));
        let cfg = MpcMwvcConfig::practical(EPS, 1);
        let dist = run_distributed(&wg, &cfg, MpcConfig::new(4, 4096));
        assert_eq!(dist.cover.size(), 0);
        assert_eq!(dist.phases, 0);
        assert!(dist.final_stats.is_none());
    }

    #[test]
    fn sparse_graph_single_final_phase() {
        // Below the practical switch threshold from the start.
        let g = gnp(400, 0.005, 3); // d ~ 2
        let w = WeightModel::Exponential { mean: 3.0 }.sample(&g, 4);
        let wg = WeightedGraph::new(g, w);
        let cfg = MpcMwvcConfig::practical(EPS, 11);
        let dist = run_distributed(&wg, &cfg, recommended_cluster(&wg, &cfg));
        assert_eq!(dist.phases, 0);
        let reference = run_reference(&wg, &cfg);
        assert_eq!(dist.cover, reference.cover);
        for (a, b) in dist.certificate.x.iter().zip(&reference.certificate.x) {
            assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn memory_stays_within_model() {
        let wg = instance(800, 12_800, 41);
        let cfg = MpcMwvcConfig::practical(EPS, 13);
        let cluster = recommended_cluster(&wg, &cfg);
        let dist = run_distributed(&wg, &cfg, cluster);
        assert!(dist.trace.is_clean());
        assert!(dist.trace.peak_resident() <= cluster.memory_words);
        assert!(dist.trace.peak_traffic() <= cluster.memory_words);
        // Near-linear regime sanity: S = O(n) (with our constants).
        assert!(cluster.memory_words < 120 * wg.num_vertices());
    }

    #[test]
    #[should_panic(expected = "simulator machines")]
    fn too_few_machines_panics() {
        let wg = instance(400, 25_000, 43); // d = 125 -> m ~ 11
        let cfg = MpcMwvcConfig::practical(EPS, 3);
        let _ = run_distributed(&wg, &cfg, MpcConfig::new(2, 1 << 22));
    }
}
