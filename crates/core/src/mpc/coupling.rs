//! Coupled execution of Algorithm 2 against the centralized Algorithm 1
//! (the measurement apparatus of Lemma 4.6 and Lemma 4.8).
//!
//! For each phase of the MPC run, the paper's analysis imagines running
//! the centralized algorithm on the induced `V^high` subgraph *with the
//! same* residual weights, initial edge values and random thresholds, and
//! bounds how far the MPC estimates stray from the centralized truth:
//!
//! * Lemma 4.6: `|y_{v,t} − ỹ^MPC_{v,t}| ≤ 6ε·w'(v)` and
//!   `|y_{v,t} − y^MPC_{v,t}| ≤ 6ε·w'(v)` for all `v`, `t ≤ I`, w.h.p.
//! * Lemma 4.13(3): for good vertices the biased estimate is one-sided,
//!   `ỹ^MPC_{v,t} ≥ y_{v,t}`.
//! * Lemma 4.8: a vertex turns *bad* (freezes in one run but not the
//!   other) in iteration `t` with probability at most `σ/ε`.
//!
//! This module reconstructs `y`, `y^MPC` and `ỹ^MPC` exactly from the
//! freeze times (the dual values are `x_0·(1-ε)^{-min(t, t_freeze)}`, so no
//! per-iteration state needs to be retained) and reports per-iteration
//! deviation and bad-vertex statistics for experiments E06, E07, E12
//! and E13.

use crate::centralized::{run_centralized_raw, CentralizedParams};
use crate::mpc::config::MpcMwvcConfig;
use crate::mpc::reference::{run_reference_observed, PhaseObserver, PhaseSnapshot};
use crate::mpc::stats::MpcRunResult;
use mwvc_graph::WeightedGraph;
use serde::{Deserialize, Serialize};

/// Deviation and bad-vertex statistics of one iteration of one phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationDeviation {
    /// Iteration index `t`.
    pub t: u32,
    /// `max_v |y_{v,t} − ỹ^MPC_{v,t}| / w'(v)` over vertices still good at
    /// the start of `t` — the Lemma 4.6 quantity for the local estimator.
    pub max_dev_estimate: f64,
    /// Mean of the same quantity.
    pub mean_dev_estimate: f64,
    /// `max_v |y_{v,t} − y^MPC_{v,t}| / w'(v)` over good vertices — the
    /// Lemma 4.6 quantity for the reconstructed global values.
    pub max_dev_global: f64,
    /// Fraction of good vertices with `ỹ^MPC < y` — one-sidedness
    /// violations (Lemma 4.13(3) says ≈ 0 with the bias enabled).
    pub one_sided_violations: f64,
    /// Fraction of `V^high` that is bad (frozen in exactly one of the two
    /// runs) at the end of iteration `t`.
    pub bad_fraction: f64,
    /// Vertices that turned bad in this iteration.
    pub newly_bad: usize,
}

/// Coupling statistics of one phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseCoupling {
    /// Phase index.
    pub phase: usize,
    /// `|V^high|`.
    pub n_high: usize,
    /// Machines `m`.
    pub machines: usize,
    /// Iterations `I`.
    pub iterations: usize,
    /// Per-iteration deviations for `t = 0..I`.
    pub per_iteration: Vec<IterationDeviation>,
    /// Total vertices ever bad in this phase.
    pub total_bad: usize,
}

impl PhaseCoupling {
    /// Largest estimator deviation across iterations.
    pub fn worst_dev_estimate(&self) -> f64 {
        self.per_iteration
            .iter()
            .map(|d| d.max_dev_estimate)
            .fold(0.0, f64::max)
    }

    /// Largest global deviation across iterations.
    pub fn worst_dev_global(&self) -> f64 {
        self.per_iteration
            .iter()
            .map(|d| d.max_dev_global)
            .fold(0.0, f64::max)
    }
}

/// Full coupling report for a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CouplingReport {
    /// One entry per phase.
    pub phases: Vec<PhaseCoupling>,
}

impl CouplingReport {
    /// Largest estimator deviation across the whole run, in units of
    /// `ε` (Lemma 4.6 predicts ≤ 6).
    pub fn worst_dev_in_epsilons(&self, epsilon: f64) -> f64 {
        self.phases
            .iter()
            .map(|p| p.worst_dev_estimate())
            .fold(0.0, f64::max)
            / epsilon
    }

    /// Fraction of one-sidedness violations across all phase-iterations.
    pub fn total_one_sided_violations(&self) -> f64 {
        let (sum, count) = self
            .phases
            .iter()
            .flat_map(|p| p.per_iteration.iter())
            .fold((0.0, 0usize), |(s, c), d| {
                (s + d.one_sided_violations, c + 1)
            });
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }
}

struct CouplingObserver {
    report: CouplingReport,
}

impl PhaseObserver for CouplingObserver {
    fn on_phase(&mut self, snap: &PhaseSnapshot<'_>) {
        let eps = snap.config.epsilon;
        let growth = 1.0 / (1.0 - eps);
        let iters = snap.iterations;
        let k = snap.local_to_global.len();

        // The imagined centralized run: same graph, weights, init, and
        // thresholds, for exactly I iterations (Lemma 4.6's setup).
        let thresholds = snap.config.thresholds;
        let seed = snap.config.seed;
        let phase_key = snap.phase_key;
        let central = run_centralized_raw(
            snap.graph,
            snap.eidx,
            snap.residual_weights,
            snap.x0.to_vec(),
            CentralizedParams {
                epsilon: eps,
                max_iterations: iters,
            },
            |lv, t| {
                thresholds.threshold(eps, seed, phase_key, snap.local_to_global[lv as usize], t)
            },
        );

        let sentinel = iters as u32;
        // Freeze times: centralized vs MPC, per local vertex.
        let fc: Vec<u32> = central
            .freeze_iteration
            .iter()
            .map(|f| f.unwrap_or(sentinel))
            .collect();
        let fm: Vec<u32> = snap
            .freeze_iter
            .iter()
            .map(|f| f.unwrap_or(sentinel))
            .collect();
        // Edge freeze times. Centralized: recorded directly. MPC: an edge
        // (local or cross-partition) freezes at the earlier endpoint
        // freeze (line 2h).
        let m_edges = snap.eidx.num_edges();
        let tc_edge: Vec<u32> = (0..m_edges)
            .map(|e| central.edge_freeze_iteration[e].unwrap_or(sentinel))
            .collect();
        let tm_edge: Vec<u32> = snap
            .eidx
            .edges()
            .iter()
            .map(|e| fm[e.u() as usize].min(fm[e.v() as usize]))
            .collect();
        // Which edges are machine-local (the estimator only sees those).
        let local_edge: Vec<bool> = snap
            .eidx
            .edges()
            .iter()
            .map(|e| snap.part_of[e.u() as usize] == snap.part_of[e.v() as usize])
            .collect();

        // x at iteration t: x0 * growth^{min(t, freeze)}.
        let x_at = |x0: f64, freeze: u32, t: u32| x0 * growth.powi(freeze.min(t) as i32);

        let mut per_iteration = Vec::with_capacity(iters + 1);
        let mut ever_bad = vec![false; k];
        for t in 0..iters as u32 {
            let mut max_dev_est = 0.0f64;
            let mut sum_dev_est = 0.0f64;
            let mut max_dev_glob = 0.0f64;
            let mut violations = 0usize;
            let mut good_count = 0usize;
            let mut bad = 0usize;
            let mut newly_bad = 0usize;
            for lv in 0..k {
                let w = snap.residual_weights[lv];
                // Bad status at end of iteration t / start of t.
                let frozen_c = fc[lv] <= t;
                let frozen_m = fm[lv] <= t;
                let was_bad = (fc[lv] < t) != (fm[lv] < t);
                let is_bad = frozen_c != frozen_m;
                if is_bad {
                    bad += 1;
                    if !ever_bad[lv] {
                        ever_bad[lv] = true;
                        newly_bad += 1;
                    }
                }
                if was_bad || w <= 0.0 {
                    continue;
                }
                good_count += 1;
                // Reconstruct y, y^MPC, ỹ^MPC at iteration t.
                let mut y = 0.0f64;
                let mut y_mpc = 0.0f64;
                let mut y_local = 0.0f64;
                let mut ids: Vec<u32> = snap
                    .eidx
                    .incident(snap.graph, lv as u32)
                    .map(|(_, eid)| eid)
                    .collect();
                ids.sort_unstable();
                for eid in ids {
                    let e = eid as usize;
                    y += x_at(snap.x0[e], tc_edge[e], t);
                    let xm = x_at(snap.x0[e], tm_edge[e], t);
                    y_mpc += xm;
                    if local_edge[e] {
                        y_local += xm;
                    }
                }
                let y_tilde = snap.bias[t as usize] * w + snap.machines as f64 * y_local;
                let dev_est = (y - y_tilde).abs() / w;
                let dev_glob = (y - y_mpc).abs() / w;
                max_dev_est = max_dev_est.max(dev_est);
                sum_dev_est += dev_est;
                max_dev_glob = max_dev_glob.max(dev_glob);
                if y_tilde < y {
                    violations += 1;
                }
            }
            per_iteration.push(IterationDeviation {
                t,
                max_dev_estimate: max_dev_est,
                mean_dev_estimate: if good_count > 0 {
                    sum_dev_est / good_count as f64
                } else {
                    0.0
                },
                max_dev_global: max_dev_glob,
                one_sided_violations: if good_count > 0 {
                    violations as f64 / good_count as f64
                } else {
                    0.0
                },
                bad_fraction: if k > 0 { bad as f64 / k as f64 } else { 0.0 },
                newly_bad,
            });
        }

        self.report.phases.push(PhaseCoupling {
            phase: snap.phase,
            n_high: k,
            machines: snap.machines,
            iterations: iters,
            per_iteration,
            total_bad: ever_bad.iter().filter(|&&b| b).count(),
        });
    }
}

/// Runs Algorithm 2 with the coupled centralized run of Lemma 4.6 attached
/// to every phase, returning both the normal result and the coupling
/// report.
pub fn run_coupled(wg: &WeightedGraph, config: &MpcMwvcConfig) -> (MpcRunResult, CouplingReport) {
    let mut obs = CouplingObserver {
        report: CouplingReport { phases: Vec::new() },
    };
    let result = run_reference_observed(wg, config, &mut obs);
    (result, obs.report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpc::config::{BiasParams, MpcMwvcConfig};
    use mwvc_graph::generators::gnm;
    use mwvc_graph::WeightModel;

    const EPS: f64 = 0.1;

    fn dense_instance(seed: u64) -> WeightedGraph {
        let g = gnm(1200, 38_400, seed); // d = 64
        let w = WeightModel::Uniform { lo: 1.0, hi: 8.0 }.sample(&g, seed);
        WeightedGraph::new(g, w)
    }

    #[test]
    fn coupling_produces_one_entry_per_phase() {
        let wg = dense_instance(3);
        let cfg = MpcMwvcConfig::practical(EPS, 7);
        let (result, report) = run_coupled(&wg, &cfg);
        assert_eq!(report.phases.len(), result.num_phases());
        assert!(!report.phases.is_empty());
        for (p, stats) in report.phases.iter().zip(&result.phases) {
            assert_eq!(p.n_high, stats.n_high);
            assert_eq!(p.machines, stats.machines);
            assert_eq!(p.iterations, stats.iterations);
            assert_eq!(p.per_iteration.len(), p.iterations);
        }
    }

    #[test]
    fn deviations_are_finite_and_bad_fraction_small() {
        let wg = dense_instance(5);
        let cfg = MpcMwvcConfig::practical(EPS, 11);
        let (_, report) = run_coupled(&wg, &cfg);
        for p in &report.phases {
            for d in &p.per_iteration {
                assert!(d.max_dev_estimate.is_finite());
                assert!(d.max_dev_global.is_finite());
                assert!(d.mean_dev_estimate <= d.max_dev_estimate + 1e-12);
                assert!((0.0..=1.0).contains(&d.bad_fraction));
            }
            // The asymptotic analysis makes bad vertices vanishingly rare
            // because the estimator noise σ ≈ d^{-1/4} is tiny once
            // d ≥ log^30 n. At laptop densities σ is 0.2–0.35, so a
            // substantial minority of vertices near their thresholds
            // resolve differently; experiment E07 charts the decay of the
            // bad fraction with d. Here we only pin down "a minority".
            assert!(
                (p.total_bad as f64) < 0.5 * p.n_high.max(1) as f64,
                "phase {}: {} of {} vertices bad",
                p.phase,
                p.total_bad,
                p.n_high
            );
        }
    }

    #[test]
    fn bias_keeps_estimates_one_sided() {
        // With the bias term on, ỹ < y should be rare (Lemma 4.13(3));
        // with the bias off, the unbiased estimator errs on both sides.
        let wg = dense_instance(9);
        let with_bias = MpcMwvcConfig::practical(EPS, 13);
        let mut without_bias = with_bias;
        without_bias.bias = BiasParams {
            enabled: false,
            ..with_bias.bias
        };
        let (_, rep_on) = run_coupled(&wg, &with_bias);
        let (_, rep_off) = run_coupled(&wg, &without_bias);
        let v_on = rep_on.total_one_sided_violations();
        let v_off = rep_off.total_one_sided_violations();
        assert!(v_on < 0.05, "bias on: {v_on} of estimates fell below truth");
        assert!(
            v_off > 3.0 * v_on + 0.05,
            "bias off should err both ways: on={v_on} off={v_off}"
        );
    }

    #[test]
    fn report_helpers() {
        let wg = dense_instance(21);
        let cfg = MpcMwvcConfig::practical(EPS, 3);
        let (_, report) = run_coupled(&wg, &cfg);
        let worst = report.worst_dev_in_epsilons(EPS);
        assert!(worst >= 0.0 && worst.is_finite());
        for p in &report.phases {
            assert!(p.worst_dev_estimate() >= p.per_iteration[0].max_dev_estimate - 1e-12);
            assert!(p.worst_dev_global().is_finite());
        }
    }
}
