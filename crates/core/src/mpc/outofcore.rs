//! An out-of-core MWVC pricing executor: the first consumer of the
//! enforced memory budget ([`mpc_sim::MemoryBudget::Enforced`]) and the
//! chunked on-disk graph format ([`ChunkedCsr`]).
//!
//! # What it computes
//!
//! A classic primal–dual *pricing* scheme, not Algorithm 2: every
//! iteration each active vertex `v` offers `o(v) = β(v)/d(v)` per
//! incident edge (`β` = residual slack `w(v) − y(v)`, `d` = active
//! degree), every active edge raises its dual by `min(o(u), o(v))`, and a
//! vertex freezes into the cover once its slack drops to `ε·w(v)`. Frozen
//! vertices cover their edges; the run ends when no active edge remains.
//! Because each vertex's offer divides its slack by its degree — and the
//! offers go on the wire rounded *toward zero* — the accumulated load
//! `y(v)` never exceeds `w(v)`: the loads are backed by feasible edge
//! duals, so `Σ_v min(y(v), w(v)) / 2` is a genuine lower bound on OPT,
//! and every slack-frozen vertex has `y(v) ≥ (1−ε)·w(v)`, giving the
//! standard `2/(1−ε)` guarantee when the iteration cap does not fire.
//!
//! This is deliberately a *different, simpler* algorithm than
//! [`crate::mpc::distributed`]: its job is to exercise the out-of-core
//! data path honestly, end to end, at edge counts where Θ(m) host memory
//! is not available. It therefore does not implement
//! [`Executor`](crate::mpc::Executor) (which consumes an in-memory
//! [`WeightedGraph`](mwvc_graph::WeightedGraph)); it consumes a
//! [`ChunkedCsr`] and exposes its own entry point, [`run_outofcore`].
//!
//! # Machine layout
//!
//! `M` machines; machine `i` owns the contiguous bucket range
//! `[i·B/M, (i+1)·B/M)` of the on-disk CSR as its *edge shard*. Machine 0
//! additionally acts as the coordinator, holding the authoritative
//! per-vertex state (weights, loads, degrees, frozen set). After a
//! census/init round pair, each iteration is two rounds:
//!
//! * **price** — every machine streams its shard (resident, or replayed
//!   from its spill file in `batch_words` batches), accumulates dual
//!   increments and active-degree counts per vertex, and sends them to
//!   the coordinator in dense chunks (all-zero chunks elided),
//! * **settle** — the coordinator folds the increments into the loads,
//!   freezes exhausted vertices, recomputes offers, and broadcasts the
//!   offer table plus the newly frozen ids.
//!
//! # The memory budget, honored
//!
//! At load time each machine compares its shard size against half its
//! budget `S` (the other half is headroom for inboxes and scratch). A
//! shard that fits stays resident; one that does not is written to the
//! machine's [`SpillFile`](mpc_sim::SpillFile) — charged to the trace as
//! [`spill_words`](mpc_sim::RoundStats::spill_words) — and re-streamed
//! every pricing round. Under
//! [`MemoryBudget::Enforced`](mpc_sim::MemoryBudget) holding more than
//! `S` resident words is a panic, so the spill decision is not advisory.
//! Crucially, the budget changes *only* where the shard lives: the
//! message sequence, covers, loads, and every gated trace field except
//! `max_resident`/`spill_words` are bit-identical across budgets
//! (`tests/determinism.rs` pins this).

use crate::cover::VertexCover;
use mpc_sim::{Cluster, ExecutionTrace, MachineCtx, MpcConfig, Words};
use mwvc_graph::outofcore::{pack_half_edge, unpack_half_edge, ChunkedCsr};

/// Entries per dense chunk on the wire (`Acc`/`Cnt`/`Offer` messages).
const CHUNK: usize = 1024;

/// Tuning knobs of the out-of-core pricing executor.
#[derive(Debug, Clone, Copy)]
pub struct OocConfig {
    /// Freeze threshold: a vertex enters the cover once its residual
    /// slack drops to `epsilon · w(v)`. Must lie in `(0, 1)`.
    pub epsilon: f64,
    /// Iteration cap; when it fires, every vertex still incident to an
    /// active edge is force-frozen so the result is always a cover.
    pub max_iterations: usize,
    /// Words per I/O batch when a shard is spilled (bounds both the
    /// spill-write granularity and the resident replay buffer).
    pub batch_words: usize,
}

impl Default for OocConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.1,
            max_iterations: 200,
            batch_words: 1 << 14,
        }
    }
}

/// Result of an out-of-core pricing run.
#[derive(Debug, Clone)]
pub struct OocOutcome {
    /// The vertex cover (slack-frozen plus any force-frozen vertices).
    pub cover: VertexCover,
    /// Per-vertex dual loads `y(v)` (sums of incident edge duals).
    pub loads: Vec<f64>,
    /// `Σ_v min(y(v), w(v)) / 2` — a lower bound on the optimal cover
    /// weight (the `min` clamps any floating round-off).
    pub dual_lower_bound: f64,
    /// Pricing iterations executed.
    pub iterations: usize,
    /// Vertices frozen by the iteration-cap fallback (0 on converged
    /// runs; the `2/(1−ε)` guarantee holds exactly when this is 0).
    pub forced: usize,
    /// The audited cluster trace (spill words are a per-round field).
    pub trace: ExecutionTrace,
}

impl OocOutcome {
    /// Cover weight under the run's weight vector.
    pub fn cover_weight(&self, weights: &[f64]) -> f64 {
        self.cover
            .vertices()
            .iter()
            .map(|&v| weights[v as usize])
            .sum()
    }
}

/// Messages of the pricing dataflow. Dense array chunks carry a base
/// vertex id; `Frozen` carries newly frozen ids (a delta, not a
/// snapshot); `Offer` chunks are absolute and therefore never elided
/// (elision would leave stale offers live on the shard machines).
#[derive(Debug, Clone)]
pub(crate) enum OocMsg {
    /// Active half-edge count of one shard for the termination test.
    Active { half_edges: u64 },
    /// Active-degree counts for vertices `base..base + counts.len()`.
    Cnt { base: u32, counts: Box<[u32]> },
    /// Dual-load increments for vertices `base..base + acc.len()`.
    Acc { base: u32, acc: Box<[f64]> },
    /// Current offers for vertices `base..base + offers.len()`.
    Offer { base: u32, offers: Box<[f32]> },
    /// Vertices frozen at the last settle.
    Frozen { ids: Box<[u32]> },
}

impl Words for OocMsg {
    fn words(&self) -> usize {
        match self {
            OocMsg::Active { .. } => 1,
            OocMsg::Cnt { counts, .. } => 1 + counts.len().div_ceil(2),
            OocMsg::Acc { acc, .. } => 1 + acc.len(),
            OocMsg::Offer { offers, .. } => 1 + offers.len().div_ceil(2),
            OocMsg::Frozen { ids } => 1 + ids.len().div_ceil(2),
        }
    }
}

/// Where a machine's edge shard lives.
#[derive(Debug)]
enum Shard {
    /// Not yet loaded (before the census round).
    Unloaded,
    /// Fit under half the budget: packed half-edge words in RAM.
    Resident(Vec<u64>),
    /// Did not fit: lives in the machine's spill file, replayed per
    /// round through a bounded buffer.
    Spilled,
}

/// Coordinator-only vertex state (machine 0).
#[derive(Debug, Default)]
struct Coord {
    /// Vertex weights.
    w: Vec<f64>,
    /// Dual loads `y(v)`.
    y: Vec<f64>,
    /// Offer denominators: the previous round's active-degree counts
    /// (an overcount of the current active degree, which is exactly what
    /// keeps the loads feasible).
    deg: Vec<u32>,
    /// Aggregation buffer for the current settle's counts.
    cnt_agg: Vec<u32>,
    /// Frozen vertices in freeze order (the cover).
    cover: Vec<u32>,
    /// Active half-edges reported by the last census/price round.
    active: u64,
    /// Vertices frozen by the iteration-cap fallback.
    forced: usize,
}

impl Coord {
    fn words(&self) -> usize {
        self.w.len()
            + self.y.len()
            + self.deg.len().div_ceil(2)
            + self.cnt_agg.len().div_ceil(2)
            + self.cover.len().div_ceil(2)
            + 2
    }
}

/// Per-machine state of the pricing executor.
struct OocState {
    shard: Shard,
    /// Current per-vertex offers, broadcast by the coordinator.
    offer: Vec<f32>,
    /// Frozen-vertex bitset (maintained on every machine from the
    /// `Frozen` deltas).
    frozen: Vec<u64>,
    /// Per-vertex dual-increment accumulator for the current round.
    acc: Vec<f64>,
    /// Per-vertex active-degree counter for the current round.
    cnt: Vec<u32>,
    /// Replay buffer for spilled shards (capacity `batch_words`).
    batch: Vec<u64>,
    /// Coordinator state (machine 0 only).
    coord: Option<Box<Coord>>,
}

impl Words for OocState {
    fn words(&self) -> usize {
        let shard = match &self.shard {
            Shard::Resident(v) => v.len(),
            Shard::Unloaded | Shard::Spilled => 0,
        };
        shard
            + self.offer.len().div_ceil(2)
            + self.frozen.len()
            + self.acc.len()
            + self.cnt.len().div_ceil(2)
            + self.batch.capacity()
            + self.coord.as_ref().map_or(0, |c| c.words())
    }
}

#[inline]
fn bit(bits: &[u64], v: u32) -> bool {
    bits[v as usize / 64] >> (v % 64) & 1 == 1
}

#[inline]
fn set_bit(bits: &mut [u64], v: u32) {
    bits[v as usize / 64] |= 1 << (v % 64);
}

/// Prices one slice of packed half-edges: for every active edge `(u, v)`
/// with `u < v`, raise both accumulators by `min(o(u), o(v))` and count
/// the edge at both endpoints. Returns the active half-edges seen.
fn price_words(
    words: &[u64],
    offer: &[f32],
    frozen: &[u64],
    acc: &mut [f64],
    cnt: &mut [u32],
) -> u64 {
    let mut active = 0u64;
    for &word in words {
        let (u, v) = unpack_half_edge(word);
        if u >= v || bit(frozen, u) || bit(frozen, v) {
            continue;
        }
        let delta = f64::from(offer[u as usize].min(offer[v as usize]));
        acc[u as usize] += delta;
        acc[v as usize] += delta;
        cnt[u as usize] += 1;
        cnt[v as usize] += 1;
        active += 1;
    }
    active
}

/// Degree census over one slice: counts every half-edge with `u < v` at
/// both endpoints. Returns the half-edges seen.
fn census_words(words: &[u64], cnt: &mut [u32]) -> u64 {
    let mut seen = 0u64;
    for &word in words {
        let (u, v) = unpack_half_edge(word);
        if u < v {
            cnt[u as usize] += 1;
            cnt[v as usize] += 1;
            seen += 1;
        }
    }
    seen
}

impl OocState {
    /// Applies the coordinator's broadcast (offer table + frozen delta)
    /// from the inbox. Offers are absolute, so the coordinator
    /// re-applying its own broadcast is a no-op.
    fn apply_broadcast(&mut self, inbox: impl Iterator<Item = OocMsg>) {
        for msg in inbox {
            match msg {
                OocMsg::Offer { base, offers } => {
                    let b = base as usize;
                    self.offer[b..b + offers.len()].copy_from_slice(&offers);
                }
                OocMsg::Frozen { ids } => {
                    for &v in ids.iter() {
                        set_bit(&mut self.frozen, v);
                    }
                }
                _ => unreachable!("price-round inboxes carry only broadcasts"),
            }
        }
    }

    /// Streams the whole shard through [`price_words`] and ships the
    /// resulting chunks to the coordinator.
    fn price_and_report(&mut self, ctx: &mut MachineCtx<OocMsg>) {
        self.acc.fill(0.0);
        self.cnt.fill(0);
        // Destructure so the shard borrow and the accumulator borrows
        // are visibly disjoint.
        let OocState {
            shard,
            offer,
            frozen,
            acc,
            cnt,
            batch,
            ..
        } = self;
        let mut active = 0u64;
        match shard {
            Shard::Unloaded => unreachable!("census precedes pricing"),
            Shard::Resident(words) => {
                active += price_words(words, offer, frozen, acc, cnt);
            }
            Shard::Spilled => {
                ctx.spill().rewind();
                loop {
                    let cap = batch.capacity();
                    batch.resize(cap, 0);
                    // An I/O failure latches inside the spill file and
                    // surfaces as a typed error after the round; here it
                    // just ends the replay.
                    let got = ctx.spill().read_words(batch).unwrap_or(0);
                    if got == 0 {
                        break;
                    }
                    active += price_words(&batch[..got], offer, frozen, acc, cnt);
                }
            }
        }
        ctx.send(0, OocMsg::Active { half_edges: active });
        self.report_chunks(ctx, true);
    }

    /// Sends the nonzero `Cnt` (and, when `with_acc`, `Acc`) chunks of
    /// the current accumulators to the coordinator.
    fn report_chunks(&self, ctx: &mut MachineCtx<OocMsg>, with_acc: bool) {
        for base in (0..self.cnt.len()).step_by(CHUNK) {
            let end = (base + CHUNK).min(self.cnt.len());
            if self.cnt[base..end].iter().all(|&c| c == 0) {
                continue;
            }
            ctx.send(
                0,
                OocMsg::Cnt {
                    base: base as u32,
                    counts: self.cnt[base..end].into(),
                },
            );
            if with_acc {
                ctx.send(
                    0,
                    OocMsg::Acc {
                        base: base as u32,
                        acc: self.acc[base..end].into(),
                    },
                );
            }
        }
    }
}

/// `x` rounded *toward zero* into `f32`: the widened value never exceeds
/// `x`, so offers computed from it understate the true slack-per-edge
/// and the accumulated loads stay feasible.
fn f32_toward_zero(x: f64) -> f32 {
    debug_assert!(x >= 0.0);
    let q = x as f32;
    if f64::from(q) > x {
        // Nearest-rounding went up: step one ulp back toward zero.
        f32::from_bits(q.to_bits() - 1)
    } else {
        q
    }
}

/// Bucket range `[lo, hi)` of machine `i` out of `m` over `b` buckets.
fn shard_range(i: usize, m: usize, b: usize) -> (usize, usize) {
    (i * b / m, (i + 1) * b / m)
}

/// Resident words of the fixed per-machine arrays (everything except the
/// shard, the replay buffer, and the coordinator block).
fn aux_words(n: usize) -> usize {
    // offer (f32) + frozen bitset + acc (f64) + cnt (u32).
    n.div_ceil(2) + n.div_ceil(64) + n + n.div_ceil(2)
}

/// The coordinator's settle step, shared by the init round (census
/// aggregation) and every iteration: fold `Cnt`/`Acc`/`Active` messages
/// into the vertex state, freeze exhausted vertices, recompute offers,
/// broadcast.
fn settle(
    state: &mut OocState,
    ctx: &mut MachineCtx<OocMsg>,
    inbox: impl Iterator<Item = OocMsg>,
    epsilon: f64,
    m: usize,
) {
    let mut coord = state.coord.take().expect("settle runs on machine 0");
    coord.cnt_agg.fill(0);
    coord.active = 0;
    for msg in inbox {
        match msg {
            OocMsg::Active { half_edges } => coord.active += half_edges,
            OocMsg::Cnt { base, counts } => {
                let b = base as usize;
                for (slot, &c) in coord.cnt_agg[b..b + counts.len()]
                    .iter_mut()
                    .zip(counts.iter())
                {
                    *slot += c;
                }
            }
            OocMsg::Acc { base, acc } => {
                let b = base as usize;
                for (slot, &a) in coord.y[b..b + acc.len()].iter_mut().zip(acc.iter()) {
                    *slot += a;
                }
            }
            _ => unreachable!("settle inboxes carry only shard reports"),
        }
    }
    // Offer denominators for the next round: this round's active counts
    // (active degrees only shrink as vertices freeze, so the offers
    // computed from them never overstate slack-per-edge).
    coord.deg.copy_from_slice(&coord.cnt_agg);

    // Freeze: vertices with active edges whose slack is exhausted join
    // the cover.
    let mut newly: Vec<u32> = Vec::new();
    for v in 0..coord.w.len() {
        if bit(&state.frozen, v as u32) {
            continue;
        }
        let slack = coord.w[v] - coord.y[v];
        if coord.deg[v] > 0 && slack <= epsilon * coord.w[v] {
            newly.push(v as u32);
        }
    }
    coord.cover.extend(&newly);
    for &v in &newly {
        set_bit(&mut state.frozen, v);
    }

    // Recompute offers from the post-freeze state.
    for v in 0..coord.w.len() {
        state.offer[v] = if bit(&state.frozen, v as u32) || coord.deg[v] == 0 {
            0.0
        } else {
            let slack = (coord.w[v] - coord.y[v]).max(0.0);
            f32_toward_zero(slack / f64::from(coord.deg[v]))
        };
    }
    state.coord = Some(coord);

    // Broadcast the full offer table and the frozen delta.
    for to in 0..m {
        for base in (0..state.offer.len()).step_by(CHUNK) {
            let end = (base + CHUNK).min(state.offer.len());
            ctx.send(
                to,
                OocMsg::Offer {
                    base: base as u32,
                    offers: state.offer[base..end].into(),
                },
            );
        }
        if !newly.is_empty() {
            ctx.send(
                to,
                OocMsg::Frozen {
                    ids: newly.as_slice().into(),
                },
            );
        }
    }
}

/// Runs the out-of-core pricing executor over an on-disk graph.
///
/// `weights[v]` is vertex `v`'s weight (all finite and nonnegative);
/// `cluster` fixes `M` and the per-machine budget `S`. The run is
/// deterministic in its inputs and — apart from resident-memory and
/// spill statistics — independent of whether shards fit in RAM.
///
/// Errors when the per-vertex state alone cannot fit under `S`: no
/// amount of spilling can rescue a budget smaller than what this
/// algorithm keeps resident per machine.
pub fn run_outofcore(
    csr: &ChunkedCsr,
    weights: &[f64],
    cfg: &OocConfig,
    cluster: MpcConfig,
) -> Result<OocOutcome, String> {
    let n = csr.num_vertices();
    assert_eq!(weights.len(), n, "one weight per vertex");
    assert!(
        cfg.epsilon > 0.0 && cfg.epsilon < 1.0,
        "epsilon must lie in (0, 1)"
    );
    assert!(cfg.batch_words > 0, "batch_words must be positive");
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be finite and nonnegative"
    );
    let m = cluster.num_machines;
    let s = cluster.memory_words;
    let coord_words = 2 * n + 2 * n.div_ceil(2) + 2;
    let floor = aux_words(n) + coord_words + cfg.batch_words;
    if floor > s {
        return Err(format!(
            "budget too small: the coordinator needs {floor} resident words for per-vertex \
             state alone, but S = {s}; spilling cannot reduce per-vertex state"
        ));
    }

    let epsilon = cfg.epsilon;
    let mut cl: Cluster<OocState, OocMsg> = Cluster::new(cluster, |id| OocState {
        shard: Shard::Unloaded,
        offer: vec![0.0; n],
        frozen: vec![0; n.div_ceil(64)],
        acc: vec![0.0; n],
        cnt: vec![0; n],
        batch: Vec::new(),
        coord: (id == 0).then(|| {
            Box::new(Coord {
                w: weights.to_vec(),
                y: vec![0.0; n],
                deg: vec![0; n],
                cnt_agg: vec![0; n],
                ..Coord::default()
            })
        }),
    });

    // Census: load (or spill) the shard, report full degrees.
    let b = csr.num_buckets();
    let batch_words = cfg.batch_words;
    cl.round("ooc census", |ctx, state, _inbox| {
        let (lo, hi) = shard_range(ctx.id, m, b);
        let shard_words = csr.entries_in_buckets(lo, hi);
        // Keep the shard resident only if it leaves half the budget free
        // for inboxes and scratch; otherwise pay the spill, once.
        let resident_budget = (s / 2).saturating_sub(state.words()) as u64;
        let mut stream = csr.stream_range(lo, hi).expect("stream shard");
        if shard_words <= resident_budget {
            let mut words = Vec::with_capacity(shard_words as usize);
            while let Some(bucket) = stream.next_bucket().expect("read shard bucket") {
                words.extend(bucket.iter().map(|&(u, v)| pack_half_edge(u, v)));
            }
            state.shard = Shard::Resident(words);
        } else {
            // Bounded spill: never hold more than `batch_words` of the
            // shard while writing it out.
            state.batch = Vec::with_capacity(batch_words);
            while let Some(bucket) = stream.next_bucket().expect("read shard bucket") {
                for &(u, v) in bucket {
                    if state.batch.len() == batch_words {
                        // Failures latch in the spill file and surface
                        // as a typed error after the segment.
                        let _ = ctx.spill().write_words(&state.batch);
                        state.batch.clear();
                    }
                    state.batch.push(pack_half_edge(u, v));
                }
            }
            let _ = ctx.spill().write_words(&state.batch);
            state.batch.clear();
            state.shard = Shard::Spilled;
        }
        // Full-degree census (no frozen set exists yet).
        state.cnt.fill(0);
        let OocState {
            shard, cnt, batch, ..
        } = state;
        let mut active = 0u64;
        match shard {
            Shard::Resident(words) => active += census_words(words, cnt),
            Shard::Spilled => {
                ctx.spill().rewind();
                loop {
                    let cap = batch.capacity();
                    batch.resize(cap, 0);
                    let got = ctx.spill().read_words(batch).unwrap_or(0);
                    if got == 0 {
                        break;
                    }
                    active += census_words(&batch[..got], cnt);
                }
            }
            Shard::Unloaded => unreachable!("shard was just loaded"),
        }
        ctx.send(0, OocMsg::Active { half_edges: active });
        state.report_chunks(ctx, false);
    });

    // Init: fold the census into degrees and offers, broadcast.
    cl.round("ooc init", move |ctx, state, inbox| {
        if ctx.id != 0 {
            debug_assert!(inbox.is_empty());
            return;
        }
        settle(state, ctx, inbox, epsilon, m);
    });

    let active_at_coord = |cl: &Cluster<OocState, OocMsg>| {
        cl.state(0)
            .coord
            .as_ref()
            .expect("machine 0 coordinates")
            .active
    };

    let mut iterations = 0usize;
    while iterations < cfg.max_iterations && active_at_coord(&cl) > 0 {
        iterations += 1;
        cl.round("ooc price", |ctx, state, inbox| {
            state.apply_broadcast(inbox);
            state.price_and_report(ctx);
        });
        cl.round("ooc settle", move |ctx, state, inbox| {
            if ctx.id != 0 {
                debug_assert!(inbox.is_empty());
                return;
            }
            settle(state, ctx, inbox, epsilon, m);
        });
    }

    if active_at_coord(&cl) > 0 {
        // Iteration cap: force-freeze everything still incident to an
        // active edge, so the result is a cover regardless.
        cl.round("ooc force", |ctx, state, inbox| {
            // Drain the last settle's broadcast so nothing dangles.
            state.apply_broadcast(inbox);
            if ctx.id != 0 {
                return;
            }
            let mut coord = state.coord.take().expect("machine 0 coordinates");
            let mut forced: Vec<u32> = Vec::new();
            for v in 0..coord.deg.len() {
                if coord.deg[v] > 0 && !bit(&state.frozen, v as u32) {
                    forced.push(v as u32);
                }
            }
            coord.forced = forced.len();
            coord.cover.extend(&forced);
            for v in forced {
                set_bit(&mut state.frozen, v);
            }
            state.coord = Some(coord);
        });
    }

    // A spill I/O failure anywhere above latched in the machine's spill
    // file rather than panicking mid-round; surface the first one as this
    // executor's error type.
    if let Some(e) = cl.take_spill_error() {
        return Err(format!("spill I/O failure: {e}"));
    }

    let (mut states, trace) = cl.finish();
    let coord = states[0].coord.take().expect("machine 0 coordinates");
    let dual_lower_bound: f64 = coord
        .y
        .iter()
        .zip(&coord.w)
        .map(|(&y, &w)| y.min(w))
        .sum::<f64>()
        / 2.0;
    Ok(OocOutcome {
        cover: VertexCover::new(n, coord.cover.clone()),
        loads: coord.y,
        dual_lower_bound,
        iterations,
        forced: coord.forced,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_sim::MemoryBudget;
    use mwvc_graph::generators::gnm;
    use mwvc_graph::{StreamingGraphBuilder, WeightModel};
    use std::path::PathBuf;

    fn test_csr(n: usize, edges: usize, seed: u64, tag: &str) -> (ChunkedCsr, PathBuf) {
        let g = gnm(n, edges, seed);
        let path = std::env::temp_dir().join(format!(
            "ooc-exec-{}-{tag}-{n}-{edges}-{seed}.ocsr",
            std::process::id()
        ));
        let mut b = StreamingGraphBuilder::new(n, 1 << 16, None);
        for e in g.edges() {
            b.add_edge(e.u(), e.v());
        }
        let csr = b.finish(&path).expect("build test csr");
        (csr, path)
    }

    fn weights_for(n: usize, seed: u64) -> Vec<f64> {
        let g = gnm(n, 0, seed);
        WeightModel::Uniform { lo: 1.0, hi: 9.0 }
            .sample(&g, seed ^ 0xabc)
            .as_slice()
            .to_vec()
    }

    #[test]
    fn produces_a_verified_cover_with_a_real_lower_bound() {
        let (csr, path) = test_csr(400, 3_000, 7, "verify");
        let w = weights_for(400, 7);
        let out = run_outofcore(&csr, &w, &OocConfig::default(), MpcConfig::new(3, 1 << 20))
            .expect("run");
        let g = csr.load_graph().expect("load");
        std::fs::remove_file(path).ok();
        out.cover.verify(&g).expect("covers every edge");
        assert!(out.dual_lower_bound > 0.0);
        let cover_w = out.cover_weight(&w);
        assert!(cover_w >= out.dual_lower_bound - 1e-9);
        if out.forced == 0 {
            let ratio = cover_w / out.dual_lower_bound;
            assert!(
                ratio <= 2.0 / (1.0 - 0.1) + 1e-6,
                "pricing ratio {ratio} above 2/(1-eps)"
            );
        }
    }

    #[test]
    fn loads_never_exceed_weights() {
        let (csr, path) = test_csr(300, 2_000, 11, "feas");
        let w = weights_for(300, 11);
        let out = run_outofcore(&csr, &w, &OocConfig::default(), MpcConfig::new(4, 1 << 20))
            .expect("run");
        std::fs::remove_file(path).ok();
        for (v, (&y, &wv)) in out.loads.iter().zip(&w).enumerate() {
            assert!(
                y <= wv * (1.0 + 1e-12),
                "vertex {v}: load {y} exceeds weight {wv}"
            );
        }
    }

    #[test]
    fn spilled_and_resident_runs_agree_bit_for_bit() {
        let n = 500;
        let (csr, path) = test_csr(n, 6_000, 3, "agree");
        let w = weights_for(n, 3);
        let cfg = OocConfig {
            batch_words: 256,
            ..OocConfig::default()
        };
        // Generous budget: everything resident.
        let big = run_outofcore(&csr, &w, &cfg, MpcConfig::new(3, 1 << 20)).expect("big");
        // Tight budget: the ~4_000-word shards exceed S/2 minus the
        // fixed arrays, so every machine must spill. Enforced makes
        // under-spilling a panic rather than a statistic.
        let small_s = 7_000;
        let small = run_outofcore(
            &csr,
            &w,
            &cfg,
            MpcConfig::new(3, small_s).with_budget(MemoryBudget::Enforced),
        )
        .expect("small");
        std::fs::remove_file(path).ok();
        assert_eq!(big.trace.total_spill(), 0, "big run must not spill");
        assert!(small.trace.total_spill() > 0, "small run must spill");
        assert!(small.trace.summary().peak_resident_words <= small_s);
        assert_eq!(big.cover, small.cover);
        assert_eq!(
            big.loads.iter().map(|y| y.to_bits()).collect::<Vec<_>>(),
            small.loads.iter().map(|y| y.to_bits()).collect::<Vec<_>>(),
            "dual loads must be bit-identical across budgets"
        );
        assert_eq!(big.iterations, small.iterations);
        // Message-side trace fields are budget-independent; resident and
        // spill statistics are exactly the fields allowed to differ.
        assert_eq!(big.trace.rounds.len(), small.trace.rounds.len());
        for (a, b) in big.trace.rounds.iter().zip(&small.trace.rounds) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.max_sent, b.max_sent);
            assert_eq!(a.max_received, b.max_received);
            assert_eq!(a.total_traffic, b.total_traffic);
        }
    }

    #[test]
    fn budget_below_vertex_state_is_a_clean_error() {
        let (csr, path) = test_csr(200, 500, 5, "err");
        let w = weights_for(200, 5);
        let err = run_outofcore(&csr, &w, &OocConfig::default(), MpcConfig::new(2, 100))
            .expect_err("budget cannot hold vertex state");
        std::fs::remove_file(path).ok();
        assert!(err.contains("budget too small"), "unhelpful error: {err}");
    }

    #[test]
    fn iteration_cap_still_yields_a_cover() {
        let (csr, path) = test_csr(200, 1_500, 13, "force");
        let w = weights_for(200, 13);
        let cfg = OocConfig {
            max_iterations: 1,
            ..OocConfig::default()
        };
        let out = run_outofcore(&csr, &w, &cfg, MpcConfig::new(2, 1 << 20)).expect("run");
        assert!(out.forced > 0, "one iteration cannot converge here");
        let g = csr.load_graph().expect("load");
        std::fs::remove_file(path).ok();
        out.cover.verify(&g).expect("forced result still covers");
    }

    #[test]
    fn empty_graph_is_trivial() {
        let (csr, path) = test_csr(50, 0, 1, "empty");
        let w = weights_for(50, 1);
        let out = run_outofcore(&csr, &w, &OocConfig::default(), MpcConfig::new(2, 1 << 16))
            .expect("run");
        std::fs::remove_file(path).ok();
        assert_eq!(out.cover.size(), 0);
        assert_eq!(out.iterations, 0);
        assert_eq!(out.dual_lower_bound, 0.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let (csr, path) = test_csr(250, 2_500, 21, "det");
        let w = weights_for(250, 21);
        let cfg = OocConfig::default();
        let a = run_outofcore(&csr, &w, &cfg, MpcConfig::new(3, 1 << 20)).expect("a");
        let b = run_outofcore(&csr, &w, &cfg, MpcConfig::new(3, 1 << 20)).expect("b");
        std::fs::remove_file(path).ok();
        assert_eq!(a.cover, b.cover);
        assert_eq!(
            a.loads.iter().map(|y| y.to_bits()).collect::<Vec<_>>(),
            b.loads.iter().map(|y| y.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn f32_toward_zero_never_rounds_up() {
        for x in [0.0, 0.1, 1.0 / 3.0, 1e-30, 123.456, 1e30] {
            let q = f32_toward_zero(x);
            assert!(f64::from(q) <= x, "{q} > {x}");
            assert!(x - f64::from(q) < x * 1e-6 + f64::MIN_POSITIVE);
        }
    }
}
