//! The reference executor of Algorithm 2: runs the exact phase schedule of
//! the MPC simulation in one address space, with no message passing.
//!
//! This executor and [`crate::mpc::distributed`] compute the same
//! algorithm — the same partitions, thresholds, local simulations
//! ([`crate::mpc::local_sim`]), freeze corrections and residual updates,
//! derived from the same seeds. The reference version exists (a) as the
//! oracle for differential tests of the distributed one, (b) for
//! large-scale experiments where routing every message would dominate
//! wall-clock without changing any measured model quantity, and (c) to
//! expose per-phase snapshots to the coupling analysis of Lemma 4.6.
//!
//! Line-by-line correspondence with Algorithm 2 is marked with `(2x)`
//! comments.

use crate::certificate::DualCertificate;
use crate::cover::VertexCover;
use crate::mpc::config::MpcMwvcConfig;
use crate::mpc::local_sim::{simulate_local, LocalEdge, LocalInstance, LocalSimParams};
use crate::mpc::stats::{FinalPhaseStats, MpcRunResult, PhaseStats};
use crate::{centralized, CentralizedParams};
use mwvc_graph::{EdgeIndex, Graph, InducedSubgraph, VertexId, VertexPartition, WeightedGraph};
use rayon::prelude::*;

/// A per-phase snapshot handed to observers before the phase's freezes are
/// applied to the global state. All slices are indexed by the phase's
/// *local* vertex/edge ids (the induced subgraph on `V^high`).
pub struct PhaseSnapshot<'a> {
    /// Phase index.
    pub phase: usize,
    /// Induced subgraph on `V^high` (local ids `0..|V^high|`).
    pub graph: &'a Graph,
    /// Edge index of `graph`.
    pub eidx: &'a EdgeIndex,
    /// Local → global vertex ids (ascending).
    pub local_to_global: &'a [VertexId],
    /// Residual weights `w'` per local vertex.
    pub residual_weights: &'a [f64],
    /// Global residual degrees `d(v)` per local vertex (Remark 4.2: the
    /// degree towards all nonfrozen vertices, not just `V^high`).
    pub residual_degrees: &'a [usize],
    /// Initial dual values per local edge.
    pub x0: &'a [f64],
    /// Machine count `m`.
    pub machines: usize,
    /// Iteration count `I`.
    pub iterations: usize,
    /// Bias fractions per iteration.
    pub bias: &'a [f64],
    /// Machine assignment per local vertex.
    pub part_of: &'a [usize],
    /// Local-simulation freeze iteration per local vertex (line 2(g)i).
    pub freeze_iter: &'a [Option<u32>],
    /// Over-freeze correction flags per local vertex (line 2i).
    pub corrected: &'a [bool],
    /// The configuration in effect.
    pub config: &'a MpcMwvcConfig,
    /// Threshold phase key: `T_{v,t}` for this phase is
    /// `config.thresholds.threshold(ε, seed, phase_key, v, t)`.
    pub phase_key: u64,
}

/// Observer of per-phase internals (used by the Lemma 4.6/4.8 coupling
/// experiments).
pub trait PhaseObserver {
    /// Called once per phase, after local simulation and correction have
    /// been computed but before global state is updated.
    fn on_phase(&mut self, snapshot: &PhaseSnapshot<'_>);
}

/// The do-nothing observer.
pub struct NoopObserver;

impl PhaseObserver for NoopObserver {
    fn on_phase(&mut self, _snapshot: &PhaseSnapshot<'_>) {}
}

/// Derives the partition seed for a phase.
pub(crate) fn partition_seed(seed: u64, phase: usize) -> u64 {
    seed ^ (phase as u64).wrapping_mul(0x2545_f491_4f6c_dd1d) ^ 0x0070_6861_7365
    // "phase"
}

/// Sums `x[eid]` over the edges incident to `v`, in ascending edge-id
/// order. The canonical order makes reference and distributed executors
/// produce bit-identical sums.
pub(crate) fn sorted_incident_sum(graph: &Graph, eidx: &EdgeIndex, v: VertexId, x: &[f64]) -> f64 {
    let mut ids: Vec<u32> = eidx.incident(graph, v).map(|(_, eid)| eid).collect();
    ids.sort_unstable();
    ids.into_iter().map(|eid| x[eid as usize]).sum()
}

/// Runs Algorithm 2 on `wg` with the given configuration.
pub fn run_reference(wg: &WeightedGraph, config: &MpcMwvcConfig) -> MpcRunResult {
    run_reference_observed(wg, config, &mut NoopObserver)
}

/// Runs Algorithm 2, reporting each phase's internals to `observer`.
pub fn run_reference_observed(
    wg: &WeightedGraph,
    config: &MpcMwvcConfig,
    observer: &mut dyn PhaseObserver,
) -> MpcRunResult {
    config.validate();
    let g = &wg.graph;
    let n = g.num_vertices();
    let eidx = EdgeIndex::build(g);
    let m_total = eidx.num_edges();
    let eps = config.epsilon;
    let growth = 1.0 / (1.0 - eps);

    // Global state across phases.
    let mut frozen = vec![false; n];
    let mut frozen_inc = vec![0.0f64; n]; // Σ_{e∋v frozen} x^MPC_e
    let mut edge_x = vec![0.0f64; m_total]; // finalized weights (valid where edge_frozen)
    let mut edge_frozen = vec![false; m_total];
    let mut resid_deg: Vec<u32> = g.vertices().map(|v| g.degree(v) as u32).collect();
    let mut nonfrozen_edges = m_total;

    let mut phases: Vec<PhaseStats> = Vec::new();
    let mut stalled = false;
    let mut hit_max_phases = false;

    // (2) While d > threshold:
    loop {
        let d_avg = 2.0 * nonfrozen_edges as f64 / n.max(1) as f64;
        if config.switch.should_switch(d_avg, n, nonfrozen_edges) {
            break;
        }
        if phases.len() >= config.max_phases {
            hit_max_phases = true;
            break;
        }
        let phase = phases.len();
        let phase_key = phase as u64;

        // (2a) V^high / V^inactive split.
        let cutoff = config.high_degree_cutoff(d_avg);
        let high: Vec<VertexId> = g
            .vertices()
            .filter(|&v| !frozen[v as usize] && resid_deg[v as usize] as f64 >= cutoff)
            .collect();
        let n_nonfrozen = frozen.iter().filter(|&&f| !f).count();
        let n_inactive = n_nonfrozen - high.len();

        // Induced subgraph on V^high; its edges are exactly E[V^high]
        // (both endpoints nonfrozen ⇒ edge nonfrozen, by the invariant
        // that an edge is frozen iff an endpoint is frozen).
        let sub = InducedSubgraph::extract(g, &high);
        let h_graph = &sub.graph;
        let h_eidx = EdgeIndex::build(h_graph);
        let edges_high = h_eidx.num_edges();

        // (2b) Residual weights for V^high.
        let wp: Vec<f64> = high
            .iter()
            .map(|&v| {
                let w = wg.weights[v] - frozen_inc[v as usize];
                debug_assert!(
                    w > -1e-6 * wg.weights[v].max(1.0),
                    "negative residual weight"
                );
                w.max(0.0)
            })
            .collect();
        let rdeg: Vec<usize> = high
            .iter()
            .map(|&v| resid_deg[v as usize] as usize)
            .collect();

        // (2c) Initial edge weights — the paper's
        // min(w'(u)/d(u), w'(v)/d(v)) under the default scheme, with d
        // the *global residual* degree (Remark 4.2); the Section 3.2
        // alternatives need the residual max degree and min residual
        // weight as scalars.
        let delta_resid = g
            .vertices()
            .filter(|&v| !frozen[v as usize])
            .map(|v| resid_deg[v as usize] as usize)
            .max()
            .unwrap_or(0);
        let min_wp = g
            .vertices()
            .filter(|&v| !frozen[v as usize])
            .map(|v| (wg.weights[v] - frozen_inc[v as usize]).max(0.0))
            .fold(f64::INFINITY, f64::min);
        let x0: Vec<f64> = h_eidx
            .edges()
            .par_iter()
            .map(|e| {
                let (lu, lv) = (e.u() as usize, e.v() as usize);
                config
                    .init
                    .phase_value(wp[lu], rdeg[lu], wp[lv], rdeg[lv], delta_resid, min_wp, n)
            })
            .collect();

        // (2e) Machines and iterations.
        let machines = config.machines_for(d_avg);
        let iterations = config.iterations.iterations(machines, d_avg, eps);
        let bias = config.bias.schedule(machines, iterations);

        // (2f) Random partition of V^high, keyed by global vertex id so
        // that any machine (and the distributed executor) can recompute it.
        let part_seed = partition_seed(config.seed, phase);
        let part_of: Vec<usize> = high
            .par_iter()
            .map(|&v| VertexPartition::part_of_vertex(v, machines, part_seed))
            .collect();

        // Build per-machine local instances.
        let mut machine_vertices: Vec<Vec<u32>> = vec![Vec::new(); machines];
        for (li, &p) in part_of.iter().enumerate() {
            machine_vertices[p].push(li as u32);
        }
        let mut pos_in_machine = vec![0u32; high.len()];
        for mv in &machine_vertices {
            for (pos, &li) in mv.iter().enumerate() {
                pos_in_machine[li as usize] = pos as u32;
            }
        }
        let mut machine_edges: Vec<Vec<LocalEdge>> = vec![Vec::new(); machines];
        for (heid, e) in h_eidx.edges().iter().enumerate() {
            let (lu, lv) = (e.u() as usize, e.v() as usize);
            let p = part_of[lu];
            if part_of[lv] == p {
                machine_edges[p].push(LocalEdge {
                    u: pos_in_machine[lu],
                    v: pos_in_machine[lv],
                    x0: x0[heid],
                });
            }
        }
        let instances: Vec<LocalInstance> = (0..machines)
            .map(|p| LocalInstance {
                vertices: machine_vertices[p]
                    .iter()
                    .map(|&li| high[li as usize])
                    .collect(),
                residual_weights: machine_vertices[p]
                    .iter()
                    .map(|&li| wp[li as usize])
                    .collect(),
                edges: std::mem::take(&mut machine_edges[p]),
            })
            .collect();
        let max_machine_edges = instances.iter().map(|i| i.edges.len()).max().unwrap_or(0);
        let local_edges_total = instances.iter().map(|i| i.edges.len()).sum();

        // (2g) Local simulation on every machine (host-parallel; free in
        // the model).
        let thresholds = config.thresholds;
        let seed = config.seed;
        let outputs: Vec<_> = instances
            .par_iter()
            .map(|inst| {
                simulate_local(
                    inst,
                    LocalSimParams {
                        epsilon: eps,
                        estimator_multiplier: machines as f64,
                        iterations,
                        bias: &bias,
                    },
                    |gv, t| thresholds.threshold(eps, seed, phase_key, gv, t),
                )
            })
            .collect();
        // Scatter machine-local freeze iterations back to phase-local ids.
        let mut freeze_iter: Vec<Option<u32>> = vec![None; high.len()];
        for (p, out) in outputs.iter().enumerate() {
            for (pos, &li) in machine_vertices[p].iter().enumerate() {
                freeze_iter[li as usize] = out.freeze_iter[pos];
            }
        }

        // (2h) Edge weights for all of E[V^high], cross-partition edges
        // included: x^MPC_e = x_{e,0} / (1-ε)^{t'}, t' the earliest freeze
        // of an endpoint (I if both survived).
        let x_mpc: Vec<f64> = h_eidx
            .edges()
            .par_iter()
            .enumerate()
            .map(|(heid, e)| {
                let fu = freeze_iter[e.u() as usize];
                let fv = freeze_iter[e.v() as usize];
                let t_prime = [fu, fv]
                    .into_iter()
                    .flatten()
                    .min()
                    .map(|t| t as usize)
                    .unwrap_or(iterations);
                x0[heid] * growth.powi(t_prime as i32)
            })
            .collect();

        // (2i) Over-freeze correction: active v ∈ V^high with
        // y^MPC_v = Σ_{e∋v, e∈E[V^high]} x^MPC_e ≥ w'(v) freeze now, so
        // residual weights stay nonnegative. Each vertex's incident sum
        // is independent (and canonically ordered), so the scan is
        // host-parallel with bit-identical verdicts at any thread count.
        let corrected: Vec<bool> = (0..high.len())
            .into_par_iter()
            .map(|lv| {
                if freeze_iter[lv].is_some() {
                    return false;
                }
                let y = sorted_incident_sum(h_graph, &h_eidx, lv as VertexId, &x_mpc);
                y >= wp[lv]
            })
            .collect();

        observer.on_phase(&PhaseSnapshot {
            phase,
            graph: h_graph,
            eidx: &h_eidx,
            local_to_global: &high,
            residual_weights: &wp,
            residual_degrees: &rdeg,
            x0: &x0,
            machines,
            iterations,
            bias: &bias,
            part_of: &part_of,
            freeze_iter: &freeze_iter,
            corrected: &corrected,
            config,
            phase_key,
        });

        // Apply freezes to global state.
        let newly_frozen_local: Vec<usize> = (0..high.len())
            .filter(|&lv| freeze_iter[lv].is_some() || corrected[lv])
            .collect();
        let frozen_local = freeze_iter.iter().filter(|f| f.is_some()).count();
        let frozen_corrected = corrected.iter().filter(|&&c| c).count();
        let nonfrozen_before = nonfrozen_edges;

        // Finalize E[V^high] edges with a newly frozen endpoint (2h).
        for (heid, e) in h_eidx.edges().iter().enumerate() {
            let (lu, lv) = (e.u() as usize, e.v() as usize);
            let u_frozen = freeze_iter[lu].is_some() || corrected[lu];
            let v_frozen = freeze_iter[lv].is_some() || corrected[lv];
            if u_frozen || v_frozen {
                let (gu, gv) = (high[lu], high[lv]);
                let geid = eidx.edge_id(g, gu, gv).expect("edge exists globally") as usize;
                debug_assert!(!edge_frozen[geid]);
                edge_frozen[geid] = true;
                edge_x[geid] = x_mpc[heid];
                frozen_inc[gu as usize] += x_mpc[heid];
                frozen_inc[gv as usize] += x_mpc[heid];
                nonfrozen_edges -= 1;
            }
        }
        // Mark vertices frozen, then (2j) zero-weight-finalize their
        // remaining nonfrozen edges (these lead to V^inactive).
        for &lv in &newly_frozen_local {
            frozen[high[lv] as usize] = true;
        }
        for &lv in &newly_frozen_local {
            let gv = high[lv];
            for (gu, geid) in eidx.incident(g, gv) {
                if edge_frozen[geid as usize] {
                    continue;
                }
                debug_assert!(
                    !frozen[gu as usize] || edge_frozen[geid as usize],
                    "edges between frozen vertices must already be finalized"
                );
                edge_frozen[geid as usize] = true;
                edge_x[geid as usize] = 0.0;
                nonfrozen_edges -= 1;
            }
        }
        // (2k) Residual degrees: each newly frozen vertex leaves its
        // nonfrozen neighbors' counts.
        for &lv in &newly_frozen_local {
            let gv = high[lv];
            for &gu in g.neighbors(gv) {
                if !frozen[gu as usize] {
                    resid_deg[gu as usize] -= 1;
                }
            }
            resid_deg[gv as usize] = 0;
        }

        phases.push(PhaseStats {
            phase,
            d_avg,
            n_high: high.len(),
            n_inactive,
            machines,
            iterations,
            edges_high,
            max_machine_edges,
            local_edges_total,
            frozen_local,
            frozen_corrected,
            nonfrozen_edges_before: nonfrozen_before,
            nonfrozen_edges_after: nonfrozen_edges,
        });

        // No-progress detection: edges only freeze through vertex freezes
        // and every frozen vertex has a nonfrozen incident edge, so an
        // unchanged edge count means the phase froze nothing (the bias
        // never reached any threshold). Further phases would repeat the
        // same outcome up to threshold resampling; move to the final
        // centralized phase instead. The paper's asymptotic constants
        // never reach this state (the switch condition fires first).
        if nonfrozen_edges == nonfrozen_before {
            stalled = true;
            break;
        }
    }

    // (3) Final centralized phase on the nonfrozen induced subgraph with
    // residual weights.
    let mut final_phase = None;
    if nonfrozen_edges > 0 {
        let rest: Vec<VertexId> = g.vertices().filter(|&v| !frozen[v as usize]).collect();
        let sub = InducedSubgraph::extract(g, &rest);
        let f_graph = &sub.graph;
        let f_eidx = EdgeIndex::build(f_graph);
        let wp: Vec<f64> = rest
            .iter()
            .map(|&v| (wg.weights[v] - frozen_inc[v as usize]).max(0.0))
            .collect();
        // In the residual instance the induced degree *is* the residual
        // degree (all frozen vertices are gone).
        let fdeg: Vec<usize> = f_graph.vertices().map(|v| f_graph.degree(v)).collect();
        let x0 = config.init.initial_values(f_graph, &f_eidx, &wp, &fdeg);
        let phase_key = phases.len() as u64 + 1_000_000; // distinct stream
        let thresholds = config.thresholds;
        let seed = config.seed;
        let res = centralized::run_centralized_raw(
            f_graph,
            &f_eidx,
            &wp,
            x0,
            CentralizedParams::new(eps),
            |lv, t| thresholds.threshold(eps, seed, phase_key, rest[lv as usize], t),
        );
        for &lv in res.cover.vertices() {
            frozen[rest[lv as usize] as usize] = true;
        }
        for (feid, fe) in f_eidx.edges().iter().enumerate() {
            let (gu, gv) = (rest[fe.u() as usize], rest[fe.v() as usize]);
            let geid = eidx.edge_id(g, gu, gv).expect("edge exists globally") as usize;
            debug_assert!(!edge_frozen[geid]);
            edge_frozen[geid] = true;
            edge_x[geid] = res.certificate.x[feid];
        }
        final_phase = Some(FinalPhaseStats {
            vertices: rest.len(),
            edges: f_eidx.num_edges(),
            iterations: res.iterations,
        });
    }

    debug_assert!(edge_frozen.iter().all(|&f| f), "all edges finalized");
    MpcRunResult {
        cover: VertexCover::from_membership(frozen),
        certificate: DualCertificate::new(edge_x),
        phases,
        final_phase,
        stalled,
        hit_max_phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::is_valid_fractional_matching;
    use mwvc_graph::generators::{gnm, gnp, planted_cover, star_composite};
    use mwvc_graph::WeightModel;

    const EPS: f64 = 0.1;

    fn check_result(wg: &WeightedGraph, res: &MpcRunResult) {
        res.cover.verify(&wg.graph).expect("not a vertex cover");
        let eidx = EdgeIndex::build(&wg.graph);
        // Theorem 4.7, checked through the robust certificate machinery:
        // the final dual values, rescaled into feasibility, certify a
        // lower bound LB <= OPT, and the cover weight must stay within the
        // (2+30eps) guarantee of that bound. (The proof's intermediate
        // inequality 2/(1-16eps) only makes sense for eps < 1/16; the
        // certified-ratio formulation holds for any eps in (0, 1/4).)
        let dual = res.certificate.value();
        let wc = res.cover.weight(wg);
        if wg.num_edges() > 0 {
            assert!(dual > 0.0);
            let ratio = res.certificate.certified_ratio(wg, &eidx, wc);
            assert!(
                ratio <= 2.0 + 30.0 * EPS,
                "certified ratio {ratio} exceeds 2+30eps"
            );
            // The dual constraints degrade by a bounded factor only.
            let factor = res.certificate.feasibility_factor(wg, &eidx);
            assert!(
                factor <= 2.0,
                "dual constraint violation factor {factor} is out of control"
            );
        }
    }

    #[test]
    fn empty_graph() {
        let wg = WeightedGraph::unweighted(Graph::empty(10));
        let res = run_reference(&wg, &MpcMwvcConfig::practical(EPS, 1));
        assert_eq!(res.cover.size(), 0);
        assert_eq!(res.num_phases(), 0);
        assert!(res.final_phase.is_none());
    }

    #[test]
    fn paper_profile_degenerates_to_final_phase_at_small_scale() {
        // log^30 n is astronomically larger than any achievable d, so the
        // paper profile must go straight to the centralized phase.
        let g = gnp(500, 0.1, 3);
        let wg = WeightedGraph::unweighted(g);
        let res = run_reference(&wg, &MpcMwvcConfig::paper(EPS, 1));
        assert_eq!(res.num_phases(), 0);
        assert!(res.final_phase.is_some());
        check_result(&wg, &res);
    }

    #[test]
    fn practical_profile_runs_phases_on_dense_graphs() {
        let g = gnm(2000, 64_000, 5); // d = 64
        let wg = WeightedGraph::new(
            g.clone(),
            WeightModel::Uniform { lo: 1.0, hi: 10.0 }.sample(&g, 7),
        );
        let res = run_reference(&wg, &MpcMwvcConfig::practical(EPS, 1));
        assert!(
            res.num_phases() >= 1,
            "expected at least one compression phase"
        );
        check_result(&wg, &res);
        // Degree reduction: every phase shrinks the nonfrozen edge count.
        for p in &res.phases {
            assert!(p.nonfrozen_edges_after < p.nonfrozen_edges_before);
        }
    }

    #[test]
    fn lemma_4_4_bound_holds_per_phase() {
        let g = gnm(2000, 64_000, 11);
        let wg = WeightedGraph::unweighted(g);
        let cfg = MpcMwvcConfig::practical(EPS, 3);
        let res = run_reference(&wg, &cfg);
        for p in &res.phases {
            let bound = p.lemma_4_4_bound(wg.num_vertices(), EPS);
            assert!(
                (p.nonfrozen_edges_after as f64) <= bound,
                "phase {}: {} edges left, bound {bound}",
                p.phase,
                p.nonfrozen_edges_after
            );
        }
    }

    #[test]
    fn certificate_is_globally_finalized() {
        let g = gnp(300, 0.1, 9);
        let wg = WeightedGraph::unweighted(g);
        let res = run_reference(&wg, &MpcMwvcConfig::practical(EPS, 2));
        assert_eq!(res.certificate.x.len(), wg.num_edges());
        assert!(res.certificate.x.iter().all(|&x| x >= 0.0 && x.is_finite()));
        // Rescaled by (1+6eps), the matching must be feasible.
        let eidx = EdgeIndex::build(&wg.graph);
        let scaled: Vec<f64> = res
            .certificate
            .x
            .iter()
            .map(|x| x / (1.0 + 6.0 * EPS))
            .collect();
        assert!(is_valid_fractional_matching(
            &wg.graph,
            &eidx,
            wg.weights.as_slice(),
            &scaled,
            1e-6
        ));
    }

    #[test]
    fn planted_instance_ratio_within_guarantee() {
        let inst = planted_cover(100, 3, 0.12, 8.0, 13);
        let res = run_reference(&inst.graph, &MpcMwvcConfig::practical(EPS, 5));
        check_result(&inst.graph, &res);
        let ratio = res.cover.weight(&inst.graph) / inst.opt_weight;
        assert!(
            ratio <= 2.0 + 30.0 * EPS,
            "ratio {ratio} exceeds the (2+30eps) guarantee"
        );
        assert!(ratio >= 1.0 - 1e-9);
    }

    #[test]
    fn star_composite_stalls_gracefully() {
        // Hubs with leaf-only neighborhoods: V^high has no internal edges,
        // so phases cannot progress; the run must stall and finish
        // centrally, still producing a valid cover.
        let g = star_composite(4, 4000, 0.0, 3);
        let wg = WeightedGraph::unweighted(g);
        let mut cfg = MpcMwvcConfig::practical(EPS, 1);
        cfg.switch = super::super::config::PhaseSwitch::AvgDegree(0.5); // force phases
        let res = run_reference(&wg, &cfg);
        assert!(res.stalled);
        assert_eq!(res.num_phases(), 1, "one no-progress phase, then break");
        check_result(&wg, &res);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = gnm(800, 12_800, 21);
        let wg = WeightedGraph::new(
            g.clone(),
            WeightModel::Exponential { mean: 5.0 }.sample(&g, 2),
        );
        let cfg = MpcMwvcConfig::practical(EPS, 77);
        let a = run_reference(&wg, &cfg);
        let b = run_reference(&wg, &cfg);
        assert_eq!(a.cover, b.cover);
        assert_eq!(a.certificate, b.certificate);
        assert_eq!(a.phases, b.phases);
        let c = run_reference(&wg, &MpcMwvcConfig::practical(EPS, 78));
        // Different seed: almost surely a different cover.
        assert_ne!(a.cover, c.cover);
    }

    #[test]
    fn observer_sees_every_phase() {
        struct Counter(usize);
        impl PhaseObserver for Counter {
            fn on_phase(&mut self, snap: &PhaseSnapshot<'_>) {
                assert_eq!(snap.phase, self.0);
                assert_eq!(snap.local_to_global.len(), snap.graph.num_vertices());
                assert_eq!(snap.x0.len(), snap.eidx.num_edges());
                assert!(snap.iterations >= 1);
                self.0 += 1;
            }
        }
        let g = gnm(1500, 48_000, 31);
        let wg = WeightedGraph::unweighted(g);
        let cfg = MpcMwvcConfig::practical(EPS, 5);
        let mut counter = Counter(0);
        let res = run_reference_observed(&wg, &cfg, &mut counter);
        assert_eq!(counter.0, res.num_phases());
        assert!(counter.0 >= 1);
    }

    #[test]
    fn edge_budget_switch_moves_to_final_phase_when_instance_fits() {
        use super::super::config::PhaseSwitch;
        let g = gnm(500, 4000, 61);
        let wg = WeightedGraph::unweighted(g);
        let mut cfg = MpcMwvcConfig::practical(EPS, 3);
        // Budget large enough for the whole instance: straight to final.
        cfg.switch = PhaseSwitch::EdgeBudget { words: 3 * 4000 };
        let res = run_reference(&wg, &cfg);
        assert_eq!(res.num_phases(), 0);
        check_result(&wg, &res);
        // Budget that cannot hold the instance: phases must run first.
        cfg.switch = PhaseSwitch::EdgeBudget {
            words: 3 * 4000 / 8,
        };
        let res = run_reference(&wg, &cfg);
        assert!(res.num_phases() >= 1);
        check_result(&wg, &res);
        for p in &res.phases {
            assert!(
                3 * p.nonfrozen_edges_before > 3 * 4000 / 8,
                "phase ran although the switch condition held"
            );
        }
    }

    #[test]
    fn max_phases_cap_fires_and_result_stays_valid() {
        let g = gnm(800, 25_600, 71); // d = 64
        let wg = WeightedGraph::unweighted(g);
        let mut cfg = MpcMwvcConfig::paper_scaled(EPS, 5);
        cfg.max_phases = 1;
        let res = run_reference(&wg, &cfg);
        // Either it finished in one phase (no cap) or the cap fired.
        assert!(res.num_phases() <= 1);
        if res.num_phases() == 1 && res.hit_max_phases {
            assert!(!res.stalled);
        }
        check_result(&wg, &res);
    }

    #[test]
    fn log_machines_schedule_runs_and_certifies() {
        use super::super::config::IterationSchedule;
        let g = gnm(1000, 32_000, 81); // d = 64
        let wg = WeightedGraph::unweighted(g);
        let mut cfg = MpcMwvcConfig::practical(EPS, 7);
        cfg.iterations = IterationSchedule::LogMachines { scale: 0.5 };
        let res = run_reference(&wg, &cfg);
        check_result(&wg, &res);
        for p in &res.phases {
            let expected = ((0.5 * (p.machines as f64).ln()).ceil() as usize).max(1);
            assert_eq!(p.iterations, expected);
        }
    }

    #[test]
    fn alternative_init_schemes_cover_but_only_w_over_d_is_certified() {
        use crate::init::InitScheme;
        let g = gnm(900, 28_800, 91);
        let wg = WeightedGraph::new(
            g.clone(),
            WeightModel::Uniform { lo: 1.0, hi: 12.0 }.sample(&g, 9),
        );
        // w/Delta behaves like w/d on near-regular graphs: certified.
        let mut cfg = MpcMwvcConfig::practical(EPS, 11);
        cfg.init = InitScheme::MaxDegree;
        check_result(&wg, &run_reference(&wg, &cfg));
        // The uniform 1/n init is exactly what the paper rejects: inside a
        // phase its duals start near zero, so bias-triggered freezes carry
        // almost no dual backing and Theorem 4.7's guarantee does NOT
        // apply. The run must still produce a valid cover; its certified
        // ratio is legitimately poor.
        cfg.init = InitScheme::Uniform;
        let res = run_reference(&wg, &cfg);
        res.cover.verify(&wg.graph).expect("still a valid cover");
        let eidx = EdgeIndex::build(&wg.graph);
        let ratio = res
            .certificate
            .certified_ratio(&wg, &eidx, res.cover.weight(&wg));
        assert!(
            ratio.is_finite() && ratio >= 1.0,
            "certificate machinery stays sound even without a guarantee"
        );
    }

    #[test]
    fn unweighted_case_reduces_to_ggk_behaviour() {
        // With w ≡ 1, the algorithm is the unweighted [GGK+18] scheme; the
        // cover must be within (2+30eps) of a maximum-matching lower bound.
        let g = gnm(1000, 16_000, 41);
        let wg = WeightedGraph::unweighted(g);
        let res = run_reference(&wg, &MpcMwvcConfig::practical(EPS, 9));
        check_result(&wg, &res);
    }
}
