//! Dinic's maximum-flow algorithm.
//!
//! Built as the substrate for the exact LP relaxation bound
//! ([`crate::lp`]): the vertex cover LP has a half-integral optimum
//! computable as a minimum s–t cut in a bipartite network, and with
//! unit-ish capacities on `O(n)`-node networks Dinic runs fast enough to
//! certify lower bounds on instances far beyond any branch-and-bound.
//!
//! Capacities are `f64`; residual arcs below [`FlowNetwork::tolerance`]
//! are treated as saturated, which keeps the level graph finite under
//! floating-point arithmetic.

/// A directed flow network with explicit residual arcs.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    /// Head of each arc (paired with its reverse at `i ^ 1`).
    to: Vec<u32>,
    /// Residual capacity of each arc.
    cap: Vec<f64>,
    /// Adjacency: arc ids per node.
    adj: Vec<Vec<u32>>,
    tolerance: f64,
}

impl FlowNetwork {
    /// Creates a network on `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        Self {
            to: Vec::new(),
            cap: Vec::new(),
            adj: vec![Vec::new(); nodes],
            tolerance: 1e-9,
        }
    }

    /// Numerical saturation threshold for residual arcs.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Adds a directed arc `from → to` with capacity `cap` (and its
    /// zero-capacity reverse). Returns the arc id.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: f64) -> usize {
        assert!(cap >= 0.0 && !cap.is_nan(), "capacity must be nonnegative");
        let id = self.to.len();
        self.to.push(to as u32);
        self.cap.push(cap);
        self.adj[from].push(id as u32);
        self.to.push(from as u32);
        self.cap.push(0.0);
        self.adj[to].push(id as u32 + 1);
        id
    }

    /// Residual capacity of arc `id`.
    pub fn residual(&self, id: usize) -> f64 {
        self.cap[id]
    }

    /// Computes the maximum flow from `s` to `t` (Dinic: BFS level graph
    /// + blocking DFS with iteration pointers).
    pub fn max_flow(&mut self, s: usize, t: usize) -> f64 {
        assert_ne!(s, t);
        let n = self.num_nodes();
        let mut flow = 0.0f64;
        let mut level = vec![-1i32; n];
        let mut iter = vec![0usize; n];
        loop {
            // BFS: build the level graph over non-saturated arcs.
            level.iter_mut().for_each(|l| *l = -1);
            level[s] = 0;
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(u) = queue.pop_front() {
                for &aid in &self.adj[u] {
                    let v = self.to[aid as usize] as usize;
                    if self.cap[aid as usize] > self.tolerance && level[v] < 0 {
                        level[v] = level[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
            if level[t] < 0 {
                return flow;
            }
            iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let pushed = self.dfs(s, t, f64::INFINITY, &level, &mut iter);
                if pushed <= self.tolerance {
                    break;
                }
                flow += pushed;
            }
        }
    }

    fn dfs(&mut self, u: usize, t: usize, limit: f64, level: &[i32], iter: &mut [usize]) -> f64 {
        if u == t {
            return limit;
        }
        while iter[u] < self.adj[u].len() {
            let aid = self.adj[u][iter[u]] as usize;
            let v = self.to[aid] as usize;
            if self.cap[aid] > self.tolerance && level[v] == level[u] + 1 {
                let pushed = self.dfs(v, t, limit.min(self.cap[aid]), level, iter);
                if pushed > self.tolerance {
                    self.cap[aid] -= pushed;
                    self.cap[aid ^ 1] += pushed;
                    return pushed;
                }
            }
            iter[u] += 1;
        }
        0.0
    }

    /// Nodes reachable from `s` in the residual graph — the source side of
    /// a minimum cut after [`max_flow`](Self::max_flow).
    pub fn min_cut_source_side(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.num_nodes()];
        seen[s] = true;
        let mut stack = vec![s];
        while let Some(u) = stack.pop() {
            for &aid in &self.adj[u] {
                let v = self.to[aid as usize] as usize;
                if self.cap[aid as usize] > self.tolerance && !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 3.5);
        assert!((net.max_flow(0, 1) - 3.5).abs() < 1e-9);
    }

    #[test]
    fn series_bottleneck() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5.0);
        net.add_edge(1, 2, 2.0);
        assert!((net.max_flow(0, 2) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_paths_sum() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 2.0);
        net.add_edge(1, 3, 2.0);
        net.add_edge(0, 2, 3.0);
        net.add_edge(2, 3, 1.5);
        assert!((net.max_flow(0, 3) - 3.5).abs() < 1e-9);
    }

    #[test]
    fn classic_augmenting_instance() {
        // The textbook diamond where a naive path choice needs the
        // residual reverse arc.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1.0);
        net.add_edge(0, 2, 1.0);
        net.add_edge(1, 2, 1.0);
        net.add_edge(1, 3, 1.0);
        net.add_edge(2, 3, 1.0);
        assert!((net.max_flow(0, 3) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected_yields_zero() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 9.0);
        net.add_edge(2, 3, 9.0);
        assert_eq!(net.max_flow(0, 3), 0.0);
    }

    #[test]
    fn min_cut_matches_flow() {
        let mut net = FlowNetwork::new(4);
        let a = net.add_edge(0, 1, 2.0);
        let b = net.add_edge(0, 2, 1.0);
        net.add_edge(1, 3, 1.0);
        net.add_edge(2, 3, 4.0);
        let flow = net.max_flow(0, 3);
        assert!((flow - 2.0).abs() < 1e-9);
        let side = net.min_cut_source_side(0);
        assert!(side[0]);
        assert!(!side[3]);
        // Cut capacity across the partition equals the flow.
        let cut: f64 = [(a, 0usize, 1usize), (b, 0, 2)]
            .iter()
            .filter(|&&(_, u, v)| side[u] && !side[v])
            .map(|&(id, ..)| 2.0f64.min(if id == a { 2.0 } else { 1.0 }))
            .sum::<f64>()
            + if side[1] { 1.0 } else { 0.0 }
            + if side[2] { 4.0 } else { 0.0 };
        assert!(cut >= flow - 1e-9);
    }

    #[test]
    fn fractional_capacities() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 0.25);
        net.add_edge(0, 1, 0.75);
        net.add_edge(1, 2, 0.8);
        assert!((net.max_flow(0, 2) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn bipartite_unit_matching() {
        // 3x3 bipartite with a perfect matching.
        let mut net = FlowNetwork::new(8);
        let (s, t) = (6, 7);
        for i in 0..3 {
            net.add_edge(s, i, 1.0);
            net.add_edge(3 + i, t, 1.0);
        }
        for (u, v) in [(0, 3), (0, 4), (1, 4), (2, 4), (2, 5)] {
            net.add_edge(u, v, f64::INFINITY);
        }
        assert!((net.max_flow(s, t) - 3.0).abs() < 1e-9);
    }
}
