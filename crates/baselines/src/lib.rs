//! `mwvc-baselines` — every comparison point the reproduction measures
//! Ghaffari–Jin–Nilis's algorithm against, plus the exact machinery that
//! certifies approximation ratios:
//!
//! * [`exact`] — branch-and-bound optimum for `n ≤ 64`,
//! * [`lp`] — the exact LP relaxation optimum at any scale
//!   (Nemhauser–Trotter bipartite reduction on top of [`dinic`] max-flow):
//!   `LP* ≤ OPT ≤ 2·LP*`,
//! * [`mod@bar_yehuda_even`] — the classic linear-time 2-approximation,
//! * [`greedy`] — ratio greedy and maximal-matching covers,
//! * [`local_model`] — the pre-paper `O(log n)`-rounds LOCAL/PRAM
//!   baseline (one primal-dual iteration per MPC round).
//!
//! [`run_algorithm`] exposes all of them (and the paper's algorithms from
//! `mwvc-core`) behind one enum for the benchmark harness.

pub mod bar_yehuda_even;
pub mod clarkson;
pub mod dinic;
pub mod exact;
pub mod greedy;
pub mod local_model;
pub mod lp;

pub use bar_yehuda_even::{bar_yehuda_even, PricingResult};
pub use clarkson::clarkson_cover;
pub use exact::{exact_mwvc, ExactResult};
pub use greedy::{greedy_ratio_cover, matching_cover};
pub use local_model::{local_baseline, LocalBaselineResult};
pub use lp::{lp_optimum, LpBound};

use mwvc_core::mpc::MpcMwvcConfig;
use mwvc_core::{InitScheme, VertexCover};
use mwvc_graph::WeightedGraph;

/// Every cover-producing algorithm in the workspace, behind one switch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algorithm {
    /// Algorithm 2 (this paper), reference executor, given config.
    MpcRoundCompression(MpcMwvcConfig),
    /// Algorithm 1 run centrally (`(2+10ε)`-approx).
    Centralized { epsilon: f64, seed: u64 },
    /// The `O(log n)`-rounds LOCAL baseline.
    LocalBaseline { epsilon: f64, seed: u64 },
    /// Bar-Yehuda–Even pricing.
    BarYehudaEven,
    /// Weighted ratio greedy.
    Greedy,
    /// Clarkson's modified greedy (2-approx with the charging fix).
    Clarkson,
    /// Maximal-matching 2-approx (unweighted guarantee only).
    MatchingCover,
    /// LP relaxation rounded up (`≤ 2·LP*`).
    LpRounding,
    /// Exact branch-and-bound (small instances only).
    Exact,
}

/// Uniform result row for the comparison tables.
#[derive(Debug, Clone)]
pub struct AlgorithmRun {
    /// Short name for table output.
    pub name: &'static str,
    /// The cover produced.
    pub cover: VertexCover,
    /// Cover weight.
    pub weight: f64,
    /// Rounds consumed in the MPC cost model, when the algorithm is an
    /// MPC algorithm (`None` for sequential ones).
    pub mpc_rounds: Option<usize>,
    /// A certified lower bound on OPT produced by the algorithm itself
    /// (dual value), when available.
    pub self_lower_bound: Option<f64>,
}

/// Runs `algorithm` on `instance`.
pub fn run_algorithm(instance: &WeightedGraph, algorithm: Algorithm) -> AlgorithmRun {
    match algorithm {
        Algorithm::MpcRoundCompression(cfg) => {
            let res = mwvc_core::mpc::run_reference(instance, &cfg);
            let eidx = mwvc_graph::EdgeIndex::build(&instance.graph);
            let lb = res.certificate.lower_bound(instance, &eidx);
            let rounds = res.mpc_rounds();
            AlgorithmRun {
                name: "mpc-compress",
                weight: res.cover.weight(instance),
                cover: res.cover,
                mpc_rounds: Some(rounds),
                self_lower_bound: Some(lb),
            }
        }
        Algorithm::Centralized { epsilon, seed } => {
            let res = mwvc_core::solve_centralized(instance, epsilon, seed);
            AlgorithmRun {
                name: "centralized",
                weight: res.cover.weight(instance),
                cover: res.cover,
                mpc_rounds: None,
                self_lower_bound: Some(res.certificate.value()),
            }
        }
        Algorithm::LocalBaseline { epsilon, seed } => {
            let res = local_baseline(instance, epsilon, InitScheme::DegreeWeighted, seed);
            AlgorithmRun {
                name: "local-baseline",
                weight: res.run.cover.weight(instance),
                cover: res.run.cover,
                mpc_rounds: Some(res.mpc_rounds),
                self_lower_bound: Some(res.run.certificate.value()),
            }
        }
        Algorithm::BarYehudaEven => {
            let res = bar_yehuda_even(instance);
            AlgorithmRun {
                name: "bar-yehuda-even",
                weight: res.cover.weight(instance),
                cover: res.cover,
                mpc_rounds: None,
                self_lower_bound: Some(res.certificate.value()),
            }
        }
        Algorithm::Greedy => {
            let cover = greedy_ratio_cover(instance);
            AlgorithmRun {
                name: "greedy",
                weight: cover.weight(instance),
                cover,
                mpc_rounds: None,
                self_lower_bound: None,
            }
        }
        Algorithm::Clarkson => {
            let cover = clarkson_cover(instance);
            AlgorithmRun {
                name: "clarkson",
                weight: cover.weight(instance),
                cover,
                mpc_rounds: None,
                self_lower_bound: None,
            }
        }
        Algorithm::MatchingCover => {
            let cover = matching_cover(instance);
            AlgorithmRun {
                name: "matching-2approx",
                weight: cover.weight(instance),
                cover,
                mpc_rounds: None,
                self_lower_bound: None,
            }
        }
        Algorithm::LpRounding => {
            let lp = lp_optimum(instance);
            let cover = VertexCover::new(instance.num_vertices(), lp.rounded_cover());
            AlgorithmRun {
                name: "lp-rounding",
                weight: cover.weight(instance),
                cover,
                mpc_rounds: None,
                self_lower_bound: Some(lp.value),
            }
        }
        Algorithm::Exact => {
            let res = exact_mwvc(instance);
            let cover = VertexCover::new(instance.num_vertices(), res.cover);
            AlgorithmRun {
                name: "exact",
                weight: res.weight,
                cover,
                mpc_rounds: None,
                self_lower_bound: Some(res.weight),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwvc_graph::generators::gnp;
    use mwvc_graph::WeightModel;

    #[test]
    fn every_algorithm_produces_a_valid_cover() {
        let g = gnp(40, 0.15, 5);
        let w = WeightModel::Uniform { lo: 1.0, hi: 6.0 }.sample(&g, 5);
        let wg = WeightedGraph::new(g, w);
        let algorithms = [
            Algorithm::MpcRoundCompression(MpcMwvcConfig::practical(0.1, 3)),
            Algorithm::Centralized {
                epsilon: 0.1,
                seed: 3,
            },
            Algorithm::LocalBaseline {
                epsilon: 0.1,
                seed: 3,
            },
            Algorithm::BarYehudaEven,
            Algorithm::Greedy,
            Algorithm::Clarkson,
            Algorithm::MatchingCover,
            Algorithm::LpRounding,
            Algorithm::Exact,
        ];
        let opt = exact_mwvc(&wg).weight;
        for alg in algorithms {
            let run = run_algorithm(&wg, alg);
            run.cover
                .verify(&wg.graph)
                .unwrap_or_else(|e| panic!("{}: uncovered edge {e:?}", run.name));
            assert!(run.weight >= opt - 1e-9, "{} beat the optimum?!", run.name);
            if let Some(lb) = run.self_lower_bound {
                assert!(
                    lb <= opt + 1e-6,
                    "{}: bogus lower bound {lb} > OPT {opt}",
                    run.name
                );
            }
        }
    }

    #[test]
    fn exact_run_weight_is_opt() {
        let g = gnp(30, 0.2, 7);
        let wg = WeightedGraph::unweighted(g);
        let run = run_algorithm(&wg, Algorithm::Exact);
        assert_eq!(run.self_lower_bound, Some(run.weight));
    }
}
