//! Exact minimum weight vertex cover by branch-and-bound.
//!
//! For ratio tables on small instances (`n ≤ 64`). Branching: pick the
//! active vertex of maximum active degree `v`; either `v` joins the cover,
//! or it does not and all its active neighbors must. Pruning: the
//! Bar-Yehuda–Even pricing bound (a maximal dual packing) lower-bounds the
//! cost of covering the remaining subgraph.

use mwvc_graph::{VertexId, WeightedGraph};

/// Result of an exact solve.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactResult {
    /// Optimal cover weight.
    pub weight: f64,
    /// An optimal cover (ascending vertex ids).
    pub cover: Vec<VertexId>,
    /// Search-tree nodes explored.
    pub nodes: u64,
}

/// Solves MWVC exactly. Panics if the graph has more than 64 vertices
/// (the solver is bitmask-based by design — it exists to certify small
/// instances, not to compete with the approximations).
pub fn exact_mwvc(wg: &WeightedGraph) -> ExactResult {
    let n = wg.num_vertices();
    assert!(n <= 64, "exact solver is limited to 64 vertices, got {n}");
    let adj: Vec<u64> = (0..n)
        .map(|v| {
            wg.graph
                .neighbors(v as VertexId)
                .iter()
                .fold(0u64, |m, &u| m | (1u64 << u))
        })
        .collect();
    let weights: Vec<f64> = wg.weights.iter().collect();
    let all: u64 = if n == 64 { !0 } else { (1u64 << n) - 1 };
    let mut solver = Solver {
        adj: &adj,
        weights: &weights,
        best: f64::INFINITY,
        best_cover: 0,
        nodes: 0,
    };
    solver.branch(all, 0.0, 0);
    let cover = (0..n as u32)
        .filter(|&v| solver.best_cover & (1u64 << v) != 0)
        .collect();
    ExactResult {
        weight: if solver.best.is_finite() {
            solver.best
        } else {
            0.0
        },
        cover,
        nodes: solver.nodes,
    }
}

struct Solver<'a> {
    adj: &'a [u64],
    weights: &'a [f64],
    best: f64,
    best_cover: u64,
    nodes: u64,
}

impl Solver<'_> {
    fn branch(&mut self, active: u64, cost: f64, chosen: u64) {
        self.nodes += 1;
        // Find the active vertex with the largest active degree.
        let mut pick = usize::MAX;
        let mut pick_deg = 0u32;
        let mut rest = active;
        while rest != 0 {
            let v = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            let deg = (self.adj[v] & active).count_ones();
            if deg > pick_deg {
                pick_deg = deg;
                pick = v;
            }
        }
        if pick == usize::MAX {
            // No active edges remain: a complete cover.
            if cost < self.best {
                self.best = cost;
                self.best_cover = chosen;
            }
            return;
        }
        // Prune with the pricing lower bound on the remaining subgraph.
        if cost + self.pricing_bound(active) >= self.best {
            return;
        }
        let v = pick;
        let vbit = 1u64 << v;
        // Branch 1: v in the cover.
        self.branch(active & !vbit, cost + self.weights[v], chosen | vbit);
        // Branch 2: v not in the cover → all active neighbors are.
        let nbrs = self.adj[v] & active;
        let mut add = 0.0;
        let mut r = nbrs;
        while r != 0 {
            let u = r.trailing_zeros() as usize;
            r &= r - 1;
            add += self.weights[u];
        }
        if cost + add < self.best {
            self.branch(active & !vbit & !nbrs, cost + add, chosen | nbrs);
        }
    }

    /// Bar-Yehuda–Even pricing on the active subgraph: a feasible dual,
    /// hence a lower bound on the optimal cover of that subgraph.
    fn pricing_bound(&self, active: u64) -> f64 {
        let n = self.adj.len();
        let mut residual: Vec<f64> = (0..n)
            .map(|v| {
                if active & (1u64 << v) != 0 {
                    self.weights[v]
                } else {
                    0.0
                }
            })
            .collect();
        let mut bound = 0.0;
        for u in 0..n {
            if active & (1u64 << u) == 0 {
                continue;
            }
            let mut nbrs = self.adj[u] & active;
            // Only count each edge once (u < v).
            nbrs &= !((1u64 << u) | ((1u64 << u) - 1));
            while nbrs != 0 {
                let v = nbrs.trailing_zeros() as usize;
                nbrs &= nbrs - 1;
                let delta = residual[u].min(residual[v]);
                if delta > 0.0 {
                    residual[u] -= delta;
                    residual[v] -= delta;
                    bound += delta;
                }
                if residual[u] <= 0.0 {
                    break;
                }
            }
        }
        bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::lp_optimum;
    use mwvc_graph::generators::{clique, gnp, path, planted_cover, star};
    use mwvc_graph::{Graph, VertexWeights};

    fn is_cover(wg: &WeightedGraph, cover: &[VertexId]) -> bool {
        let set: std::collections::HashSet<_> = cover.iter().copied().collect();
        wg.graph
            .edges()
            .all(|e| set.contains(&e.u()) || set.contains(&e.v()))
    }

    #[test]
    fn empty_graph() {
        let wg = WeightedGraph::unweighted(Graph::empty(5));
        let r = exact_mwvc(&wg);
        assert_eq!(r.weight, 0.0);
        assert!(r.cover.is_empty());
    }

    #[test]
    fn single_edge_picks_lighter_endpoint() {
        let g = path(2);
        let wg = WeightedGraph::new(g, VertexWeights::from_vec(vec![3.0, 1.0]));
        let r = exact_mwvc(&wg);
        assert_eq!(r.cover, vec![1]);
        assert_eq!(r.weight, 1.0);
    }

    #[test]
    fn unweighted_classics() {
        // K5: OPT = 4. Star(9): OPT = 1. P5 (4 edges): OPT = 2.
        assert_eq!(
            exact_mwvc(&WeightedGraph::unweighted(clique(5))).weight,
            4.0
        );
        assert_eq!(exact_mwvc(&WeightedGraph::unweighted(star(9))).weight, 1.0);
        assert_eq!(exact_mwvc(&WeightedGraph::unweighted(path(5))).weight, 2.0);
    }

    #[test]
    fn weighted_star_prefers_heavy_center_leaves() {
        // Heavy center, light leaves: cover with all leaves.
        let g = star(5);
        let wg = WeightedGraph::new(g, VertexWeights::from_vec(vec![100.0, 1.0, 1.0, 1.0, 1.0]));
        let r = exact_mwvc(&wg);
        assert_eq!(r.weight, 4.0);
        assert_eq!(r.cover, vec![1, 2, 3, 4]);
    }

    #[test]
    fn matches_planted_optimum() {
        let inst = planted_cover(8, 2, 0.2, 5.0, 3);
        assert!(inst.graph.num_vertices() <= 64);
        let r = exact_mwvc(&inst.graph);
        assert!(is_cover(&inst.graph, &r.cover));
        assert!(
            (r.weight - inst.opt_weight).abs() < 1e-9,
            "exact {} vs planted {}",
            r.weight,
            inst.opt_weight
        );
    }

    #[test]
    fn sandwiched_by_lp_bound() {
        for seed in 0..5 {
            let g = gnp(40, 0.15, seed);
            let w = mwvc_graph::WeightModel::Uniform { lo: 1.0, hi: 9.0 }.sample(&g, seed);
            let wg = WeightedGraph::new(g, w);
            let r = exact_mwvc(&wg);
            assert!(is_cover(&wg, &r.cover));
            let lp = lp_optimum(&wg);
            assert!(
                lp.value <= r.weight + 1e-6,
                "LP {} must lower-bound OPT {}",
                lp.value,
                r.weight
            );
            assert!(
                r.weight <= 2.0 * lp.value + 1e-6,
                "OPT {} must be within twice LP {}",
                r.weight,
                lp.value
            );
        }
    }

    #[test]
    fn cover_weight_matches_members() {
        let g = gnp(30, 0.2, 9);
        let w = mwvc_graph::WeightModel::Exponential { mean: 2.0 }.sample(&g, 9);
        let wg = WeightedGraph::new(g, w);
        let r = exact_mwvc(&wg);
        let sum: f64 = r.cover.iter().map(|&v| wg.weights[v]).sum();
        assert!((sum - r.weight).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "64 vertices")]
    fn oversized_instance_rejected() {
        let wg = WeightedGraph::unweighted(Graph::empty(65));
        let _ = exact_mwvc(&wg);
    }
}
