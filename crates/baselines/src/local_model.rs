//! The pre-existing LOCAL/PRAM-style baseline the paper improves on.
//!
//! Before this paper, the best MPC algorithm for *weighted* vertex cover
//! simply ran a LOCAL-model primal-dual algorithm one iteration per
//! communication round (cf. `[KY09]` and the classic PRAM literature cited
//! in Section 1.2) — `O(log n)`-type round counts, in contrast to the
//! `O(log log d)` rounds of round compression. This module prices that
//! baseline: the same Algorithm 1 semantics, but **every iteration costs
//! one MPC round** (plus one final gather round).
//!
//! Experiment E01 plots these round counts against Algorithm 2's.

use mwvc_core::centralized::{run_centralized, CentralizedParams};
use mwvc_core::{CentralizedResult, InitScheme, ThresholdScheme};
use mwvc_graph::WeightedGraph;

/// Outcome of the LOCAL-model baseline.
#[derive(Debug, Clone)]
pub struct LocalBaselineResult {
    /// The underlying centralized run (cover, certificate, trace).
    pub run: CentralizedResult,
    /// MPC rounds consumed: one per iteration, plus one to assemble the
    /// output.
    pub mpc_rounds: usize,
}

/// Runs the LOCAL baseline: Algorithm 1 with one iteration per round.
pub fn local_baseline(
    wg: &WeightedGraph,
    epsilon: f64,
    init: InitScheme,
    seed: u64,
) -> LocalBaselineResult {
    let run = run_centralized(
        wg,
        CentralizedParams::new(epsilon),
        init,
        ThresholdScheme::UniformRandom,
        seed,
    );
    let mpc_rounds = run.iterations + 1;
    LocalBaselineResult { run, mpc_rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwvc_core::mpc::{run_reference, MpcMwvcConfig};
    use mwvc_graph::generators::gnm;
    use mwvc_graph::WeightModel;

    const EPS: f64 = 0.1;

    #[test]
    fn baseline_rounds_track_iterations() {
        let g = gnm(500, 8000, 3);
        let wg = WeightedGraph::new(
            g.clone(),
            WeightModel::Uniform { lo: 1.0, hi: 5.0 }.sample(&g, 3),
        );
        let res = local_baseline(&wg, EPS, InitScheme::DegreeWeighted, 7);
        assert_eq!(res.mpc_rounds, res.run.iterations + 1);
        res.run.cover.verify(&wg.graph).unwrap();
    }

    #[test]
    fn round_compression_beats_local_on_dense_graphs() {
        // The headline comparison: on a dense instance, Algorithm 2's
        // round count (O(log log d) shape) undercuts the LOCAL baseline's
        // O(log Delta) iterations-as-rounds.
        let d = 512;
        let n = 2000;
        let g = gnm(n, n * d / 2, 11);
        let wg = WeightedGraph::new(
            g.clone(),
            WeightModel::Uniform { lo: 1.0, hi: 10.0 }.sample(&g, 5),
        );
        let local = local_baseline(&wg, EPS, InitScheme::DegreeWeighted, 13);
        let mpc = run_reference(&wg, &MpcMwvcConfig::practical(EPS, 13));
        assert!(
            mpc.mpc_rounds() < local.mpc_rounds,
            "round compression ({}) should beat one-iteration-per-round ({})",
            mpc.mpc_rounds(),
            local.mpc_rounds
        );
    }

    #[test]
    fn uniform_init_baseline_is_slower_on_wide_weights() {
        let g = gnm(400, 4000, 17);
        let wg = WeightedGraph::new(
            g.clone(),
            WeightModel::Uniform { lo: 1.0, hi: 1e8 }.sample(&g, 1),
        );
        let dw = local_baseline(&wg, EPS, InitScheme::DegreeWeighted, 3);
        let uni = local_baseline(&wg, EPS, InitScheme::Uniform, 3);
        assert!(uni.mpc_rounds > dw.mpc_rounds);
    }
}
