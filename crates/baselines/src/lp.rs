//! Exact LP relaxation of minimum weight vertex cover (the paper's
//! Figure 1 primal), solved via the Nemhauser–Trotter bipartite reduction
//! and max-flow.
//!
//! The vertex cover LP always has a half-integral optimal solution, and
//! its value equals half the minimum weight vertex cover of the *bipartite
//! double cover* `H`: every vertex `v` becomes `v_L`, `v_R` (each of
//! weight `w(v)`), every edge `(u,v)` becomes `(u_L, v_R)` and
//! `(v_L, u_R)`. A minimum weight vertex cover of a bipartite graph is a
//! minimum s–t cut (`s → v_L` at capacity `w(v)`, `v_R → t` at capacity
//! `w(v)`, crossing arcs at `∞`), so the exact LP value — and a
//! half-integral optimal solution — comes out of one Dinic run.
//!
//! `LP* ≤ OPT ≤ 2·LP*`, so `LP*` certifies approximation ratios at any
//! instance size, which is how the experiment suite measures ratios on
//! graphs far beyond the reach of the exact solver.

use crate::dinic::FlowNetwork;
use mwvc_graph::WeightedGraph;

/// The exact LP optimum with a half-integral optimal solution.
#[derive(Debug, Clone)]
pub struct LpBound {
    /// Optimal LP objective `Σ_v z_v w(v)`; satisfies `LP* ≤ OPT ≤ 2·LP*`.
    pub value: f64,
    /// A half-integral optimal solution, `z_v ∈ {0, 1/2, 1}`.
    pub solution: Vec<f64>,
}

/// Solves the MWVC LP relaxation exactly.
pub fn lp_optimum(wg: &WeightedGraph) -> LpBound {
    let n = wg.num_vertices();
    // Nodes: v_L = v, v_R = n + v, s = 2n, t = 2n + 1.
    let (s, t) = (2 * n, 2 * n + 1);
    let mut net = FlowNetwork::new(2 * n + 2);
    for v in 0..n {
        let w = wg.weights[v as u32];
        net.add_edge(s, v, w);
        net.add_edge(n + v, t, w);
    }
    for e in wg.graph.edges() {
        let (u, v) = (e.u() as usize, e.v() as usize);
        net.add_edge(u, n + v, f64::INFINITY);
        net.add_edge(v, n + u, f64::INFINITY);
    }
    let cut = net.max_flow(s, t);
    // Min cut → bipartite cover: v_L is in the cover iff it is cut off
    // from s; v_R iff it remains on the source side.
    let side = net.min_cut_source_side(s);
    let solution: Vec<f64> = (0..n)
        .map(|v| {
            let left_in_cover = !side[v];
            let right_in_cover = side[n + v];
            (u8::from(left_in_cover) + u8::from(right_in_cover)) as f64 / 2.0
        })
        .collect();
    LpBound {
        value: cut / 2.0,
        solution,
    }
}

impl LpBound {
    /// Checks that the stored solution is LP-feasible: `z_u + z_v ≥ 1` on
    /// every edge, `z ∈ [0,1]`, and its objective matches `value`.
    pub fn verify(&self, wg: &WeightedGraph, tol: f64) -> bool {
        if self.solution.len() != wg.num_vertices() {
            return false;
        }
        if !self
            .solution
            .iter()
            .all(|&z| (-tol..=1.0 + tol).contains(&z))
        {
            return false;
        }
        if !wg
            .graph
            .edges()
            .all(|e| self.solution[e.u() as usize] + self.solution[e.v() as usize] >= 1.0 - tol)
        {
            return false;
        }
        let obj: f64 = self
            .solution
            .iter()
            .enumerate()
            .map(|(v, &z)| z * wg.weights[v as u32])
            .sum();
        (obj - self.value).abs() <= tol * (1.0 + self.value.abs())
    }

    /// Rounds the half-integral solution up (`z ≥ 1/2 → 1`): a valid
    /// integral cover of weight `≤ 2·LP*` (the classic LP-rounding
    /// 2-approximation).
    pub fn rounded_cover(&self) -> Vec<u32> {
        self.solution
            .iter()
            .enumerate()
            .filter(|&(_, &z)| z >= 0.5)
            .map(|(v, _)| v as u32)
            .collect()
    }
}

/// The Nemhauser–Trotter kernel of an instance.
///
/// From a half-integral LP optimum, the NT theorem gives a *persistency*
/// decomposition: vertices with `z_v = 1` belong to some optimal cover,
/// vertices with `z_v = 0` are excluded from some optimal cover, and the
/// problem restricted to the `z_v = 1/2` vertices (the kernel) satisfies
/// `OPT(G) = w(forced) + OPT(kernel)`.
#[derive(Debug, Clone)]
pub struct NtKernel {
    /// Vertices forced into the cover (`z_v = 1`), ascending.
    pub forced: Vec<u32>,
    /// Total weight of the forced vertices.
    pub forced_weight: f64,
    /// The kernel instance over the `z_v = 1/2` vertices.
    pub kernel: WeightedGraph,
    /// Kernel-local id → original vertex id.
    pub kernel_to_original: Vec<u32>,
}

impl NtKernel {
    /// Lifts a cover of the kernel back to a cover of the original
    /// instance (kernel cover ∪ forced vertices).
    pub fn lift(&self, kernel_cover: &[u32]) -> Vec<u32> {
        let mut cover: Vec<u32> = self.forced.clone();
        cover.extend(
            kernel_cover
                .iter()
                .map(|&v| self.kernel_to_original[v as usize]),
        );
        cover.sort_unstable();
        cover
    }
}

/// Computes the Nemhauser–Trotter kernel via the exact LP solution.
pub fn nt_kernel(wg: &WeightedGraph) -> NtKernel {
    let lp = lp_optimum(wg);
    let n = wg.num_vertices();
    let mut forced = Vec::new();
    let mut half: Vec<u32> = Vec::new();
    for v in 0..n as u32 {
        let z = lp.solution[v as usize];
        if z >= 0.75 {
            forced.push(v);
        } else if z >= 0.25 {
            half.push(v);
        }
    }
    let sub = mwvc_graph::InducedSubgraph::extract(&wg.graph, &half);
    let weights: Vec<f64> = half.iter().map(|&v| wg.weights[v]).collect();
    let forced_weight = forced.iter().map(|&v| wg.weights[v]).sum();
    NtKernel {
        forced,
        forced_weight,
        kernel: WeightedGraph::new(sub.graph, mwvc_graph::VertexWeights::from_vec(weights)),
        kernel_to_original: half,
    }
}

/// Exact MWVC through NT kernelization: forced vertices plus a
/// branch-and-bound solve of the (often much smaller) kernel. Extends the
/// reach of [`crate::exact_mwvc`] to any instance whose *kernel* has at
/// most 64 vertices.
pub fn exact_mwvc_kernelized(wg: &WeightedGraph) -> (f64, Vec<u32>) {
    let kern = nt_kernel(wg);
    if kern.kernel.num_vertices() == 0 {
        return (kern.forced_weight, kern.forced);
    }
    let sub = crate::exact::exact_mwvc(&kern.kernel);
    let cover = kern.lift(&sub.cover);
    (kern.forced_weight + sub.weight, cover)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwvc_graph::generators::{clique, gnp, path, star};
    use mwvc_graph::{Graph, VertexWeights, WeightModel};

    fn unweighted(g: Graph) -> WeightedGraph {
        WeightedGraph::unweighted(g)
    }

    #[test]
    fn single_edge_lp_is_one_half_each() {
        let wg = unweighted(path(2));
        let lp = lp_optimum(&wg);
        assert!((lp.value - 1.0).abs() < 1e-9);
        assert!(lp.verify(&wg, 1e-9));
    }

    #[test]
    fn star_lp_picks_center() {
        // Star with cheap center: LP = integral optimum = w(center).
        let g = star(6);
        let mut w = vec![10.0; 6];
        w[0] = 1.0;
        let wg = WeightedGraph::new(g, VertexWeights::from_vec(w));
        let lp = lp_optimum(&wg);
        assert!((lp.value - 1.0).abs() < 1e-9);
        assert!(lp.verify(&wg, 1e-9));
        assert_eq!(lp.rounded_cover(), vec![0]);
    }

    #[test]
    fn triangle_lp_is_half_integral() {
        // K3 unweighted: LP optimum is z = 1/2 everywhere, value 3/2
        // (integral optimum is 2 — the classic integrality gap).
        let wg = unweighted(clique(3));
        let lp = lp_optimum(&wg);
        assert!((lp.value - 1.5).abs() < 1e-9);
        assert!(lp.verify(&wg, 1e-9));
        assert!(lp.solution.iter().all(|&z| (z - 0.5).abs() < 1e-9));
    }

    #[test]
    fn bipartite_lp_is_integral() {
        // Even path (bipartite): LP = integral OPT.
        let wg = unweighted(path(6)); // OPT(P6, 5 edges) = 2? vertices 1 and 3 cover edges 0-1,1-2,2-3,3-4; edge 4-5 uncovered -> need 3.
        let lp = lp_optimum(&wg);
        assert!(
            (lp.value.round() - lp.value).abs() < 1e-9,
            "integral on bipartite"
        );
        assert!((lp.value - 3.0).abs() < 1e-9);
        assert!(lp.verify(&wg, 1e-9));
    }

    #[test]
    fn solution_is_half_integral_everywhere() {
        let g = gnp(80, 0.08, 3);
        let w = WeightModel::Uniform { lo: 1.0, hi: 5.0 }.sample(&g, 4);
        let wg = WeightedGraph::new(g, w);
        let lp = lp_optimum(&wg);
        assert!(lp.verify(&wg, 1e-7));
        for &z in &lp.solution {
            let nearest = [0.0, 0.5, 1.0]
                .iter()
                .map(|&h| (z - h).abs())
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < 1e-7, "z = {z} is not half-integral");
        }
    }

    #[test]
    fn rounded_cover_is_a_cover_within_twice_lp() {
        let g = gnp(120, 0.05, 11);
        let w = WeightModel::Exponential { mean: 3.0 }.sample(&g, 5);
        let wg = WeightedGraph::new(g, w);
        let lp = lp_optimum(&wg);
        let cover = lp.rounded_cover();
        let member: std::collections::HashSet<u32> = cover.iter().copied().collect();
        for e in wg.graph.edges() {
            assert!(member.contains(&e.u()) || member.contains(&e.v()));
        }
        let cover_w: f64 = cover.iter().map(|&v| wg.weights[v]).sum();
        assert!(cover_w <= 2.0 * lp.value + 1e-6);
    }

    #[test]
    fn lp_lower_bounds_any_cover() {
        let g = gnp(60, 0.1, 7);
        let wg = unweighted(g);
        let lp = lp_optimum(&wg);
        // The whole vertex set is a cover; LP must be below its weight.
        assert!(lp.value <= wg.weights.total() + 1e-9);
        assert!(lp.value > 0.0);
    }

    #[test]
    fn empty_graph_lp_is_zero() {
        let wg = unweighted(Graph::empty(4));
        let lp = lp_optimum(&wg);
        assert_eq!(lp.value, 0.0);
        assert!(lp.solution.iter().all(|&z| z == 0.0));
    }

    #[test]
    fn nt_kernel_partitions_vertices() {
        let g = gnp(80, 0.06, 13);
        let w = WeightModel::Uniform { lo: 1.0, hi: 6.0 }.sample(&g, 13);
        let wg = WeightedGraph::new(g, w);
        let kern = nt_kernel(&wg);
        assert!(kern.forced.len() + kern.kernel.num_vertices() <= wg.num_vertices());
        // Forced weight equals the sum of its members.
        let fw: f64 = kern.forced.iter().map(|&v| wg.weights[v]).sum();
        assert!((fw - kern.forced_weight).abs() < 1e-9);
        // Every edge not inside the kernel must touch a forced vertex or
        // be excluded-excluded... which NT forbids: z_u + z_v >= 1 means
        // no edge joins two z=0 vertices, so non-kernel edges touch a
        // forced vertex.
        let forced: std::collections::HashSet<u32> = kern.forced.iter().copied().collect();
        let half: std::collections::HashSet<u32> =
            kern.kernel_to_original.iter().copied().collect();
        for e in wg.graph.edges() {
            let in_kernel = half.contains(&e.u()) && half.contains(&e.v());
            if !in_kernel {
                assert!(
                    forced.contains(&e.u()) || forced.contains(&e.v()),
                    "edge {e:?} escapes both the kernel and the forced set"
                );
            }
        }
    }

    #[test]
    fn kernelized_exact_matches_plain_exact() {
        for seed in 0..6 {
            let g = gnp(44, 0.12, seed);
            let w = WeightModel::Uniform { lo: 1.0, hi: 7.0 }.sample(&g, seed);
            let wg = WeightedGraph::new(g, w);
            let plain = crate::exact::exact_mwvc(&wg);
            let (kw, kcover) = exact_mwvc_kernelized(&wg);
            assert!(
                (kw - plain.weight).abs() < 1e-6,
                "seed {seed}: kernelized {kw} vs plain {}",
                plain.weight
            );
            // The lifted cover is a valid cover with the claimed weight.
            let set: std::collections::HashSet<u32> = kcover.iter().copied().collect();
            assert!(wg
                .graph
                .edges()
                .all(|e| set.contains(&e.u()) || set.contains(&e.v())));
            let cw: f64 = kcover.iter().map(|&v| wg.weights[v]).sum();
            assert!((cw - kw).abs() < 1e-6);
        }
    }

    #[test]
    fn kernelization_extends_exact_reach() {
        // n = 300 is far beyond the 64-vertex B&B limit, but sparse random
        // instances have small NT kernels.
        let g = gnp(300, 0.01, 21);
        let w = WeightModel::Uniform { lo: 1.0, hi: 5.0 }.sample(&g, 21);
        let wg = WeightedGraph::new(g, w);
        let kern = nt_kernel(&wg);
        if kern.kernel.num_vertices() <= 64 {
            let (opt, cover) = exact_mwvc_kernelized(&wg);
            let set: std::collections::HashSet<u32> = cover.iter().copied().collect();
            assert!(wg
                .graph
                .edges()
                .all(|e| set.contains(&e.u()) || set.contains(&e.v())));
            // Sandwich against the LP.
            let lp = lp_optimum(&wg);
            assert!(lp.value <= opt + 1e-6 && opt <= 2.0 * lp.value + 1e-6);
        }
    }
}
