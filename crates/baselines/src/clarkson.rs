//! Clarkson's modified greedy (1983): the weighted greedy that *keeps*
//! the factor-2 guarantee.
//!
//! The plain ratio greedy ([`crate::greedy::greedy_ratio_cover`]) can be
//! `Θ(log n)` off; Clarkson's fix is to charge the chosen vertex's
//! price to its surviving neighbors: pick `v` minimizing
//! `w̃(v)/d̃(v)` (residual weight over active degree), put it in the
//! cover, and *reduce every active neighbor's residual weight* by that
//! ratio. The reductions form a feasible dual, giving `w(C) ≤ 2·OPT`.
//!
//! Included as the strongest sequential greedy the MPC algorithm can be
//! compared against on quality.

use mwvc_core::VertexCover;
use mwvc_graph::{VertexId, WeightedGraph};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Runs Clarkson's greedy. `O(m log n)` via a lazy-deletion heap keyed by
/// per-vertex version stamps.
pub fn clarkson_cover(wg: &WeightedGraph) -> VertexCover {
    let g = &wg.graph;
    let n = g.num_vertices();
    let mut residual: Vec<f64> = wg.weights.iter().collect();
    let mut active_deg: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
    let mut version = vec![0u32; n];
    let mut removed = vec![false; n];
    let mut in_cover = vec![false; n];
    let mut remaining_edges = g.num_edges();

    let ratio = |residual: &[f64], active_deg: &[usize], v: usize| {
        OrdF64(residual[v] / active_deg[v] as f64)
    };
    let mut heap: BinaryHeap<(Reverse<OrdF64>, VertexId, u32)> = g
        .vertices()
        .filter(|&v| active_deg[v as usize] > 0)
        .map(|v| (Reverse(ratio(&residual, &active_deg, v as usize)), v, 0u32))
        .collect();

    while remaining_edges > 0 {
        let (_, v, stamp) = heap.pop().expect("edges remain, so does a candidate");
        let vu = v as usize;
        if removed[vu] || active_deg[vu] == 0 {
            continue;
        }
        if stamp != version[vu] {
            heap.push((Reverse(ratio(&residual, &active_deg, vu)), v, version[vu]));
            continue;
        }
        let price = residual[vu] / active_deg[vu] as f64;
        in_cover[vu] = true;
        removed[vu] = true;
        remaining_edges -= active_deg[vu];
        for &u in g.neighbors(v) {
            let uu = u as usize;
            if removed[uu] || active_deg[uu] == 0 {
                continue;
            }
            // The charging step that restores the factor-2 bound.
            residual[uu] = (residual[uu] - price).max(0.0);
            active_deg[uu] -= 1;
            version[uu] += 1;
            if active_deg[uu] > 0 {
                heap.push((Reverse(ratio(&residual, &active_deg, uu)), u, version[uu]));
            }
        }
        active_deg[vu] = 0;
    }
    VertexCover::from_membership(in_cover)
}

/// Total-order wrapper for finite f64 heap keys.
#[derive(PartialEq, PartialOrd)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).expect("finite ratios only")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_mwvc;
    use crate::lp::lp_optimum;
    use mwvc_graph::generators::{gnp, star};
    use mwvc_graph::{VertexWeights, WeightModel};

    #[test]
    fn covers_everything() {
        for seed in 0..5 {
            let g = gnp(200, 0.05, seed);
            let w = WeightModel::Zipf {
                exponent: 1.3,
                scale: 30.0,
            }
            .sample(&g, seed);
            let wg = WeightedGraph::new(g, w);
            clarkson_cover(&wg).verify(&wg.graph).unwrap();
        }
    }

    #[test]
    fn two_approximation_against_exact() {
        for seed in 0..8 {
            let g = gnp(40, 0.15, seed);
            let w = WeightModel::Uniform { lo: 1.0, hi: 9.0 }.sample(&g, seed);
            let wg = WeightedGraph::new(g, w);
            let opt = exact_mwvc(&wg).weight;
            let c = clarkson_cover(&wg);
            assert!(
                c.weight(&wg) <= 2.0 * opt + 1e-9,
                "seed {seed}: {} > 2 * {opt}",
                c.weight(&wg)
            );
        }
    }

    #[test]
    fn two_approximation_against_lp_at_scale() {
        let g = gnp(800, 0.02, 3);
        let w = WeightModel::Exponential { mean: 4.0 }.sample(&g, 3);
        let wg = WeightedGraph::new(g, w);
        let c = clarkson_cover(&wg);
        c.verify(&wg.graph).unwrap();
        let lp = lp_optimum(&wg).value;
        // OPT >= LP*, so 2*OPT >= 2*LP*; but we only know w <= 2*OPT <=
        // 4*LP* in general. Empirically it stays under 2*LP* here too.
        assert!(c.weight(&wg) <= 2.0 * 2.0 * lp + 1e-6);
    }

    #[test]
    fn cheap_center_star() {
        let g = star(10);
        let mut w = vec![5.0; 10];
        w[0] = 1.0;
        let wg = WeightedGraph::new(g, VertexWeights::from_vec(w));
        let c = clarkson_cover(&wg);
        assert_eq!(c.vertices(), &[0]);
    }

    #[test]
    fn empty_graph() {
        let wg = WeightedGraph::unweighted(mwvc_graph::Graph::empty(4));
        assert_eq!(clarkson_cover(&wg).size(), 0);
    }
}
