//! Greedy heuristics: what practitioners reach for first.
//!
//! * [`greedy_ratio_cover`] — repeatedly take the vertex minimizing
//!   `w(v) / (active degree)`. The natural weighted greedy; its
//!   approximation factor is `Θ(log n)` in the worst case (it is the
//!   set-cover greedy specialized to edges), but it is often strong in
//!   practice — which is exactly why the E08 table includes it next to
//!   the certified `2+ε` algorithms.
//! * [`matching_cover`] — take both endpoints of a greedily built maximal
//!   matching: the textbook unweighted 2-approximation (a weighted
//!   guarantee does *not* hold; included as the unweighted baseline the
//!   paper's `w ≡ 1` case reduces to).

use mwvc_core::VertexCover;
use mwvc_graph::{VertexId, WeightedGraph};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Weighted greedy by best weight-per-covered-edge ratio, lazy-deletion
/// heap, `O(m log n)`.
pub fn greedy_ratio_cover(wg: &WeightedGraph) -> VertexCover {
    let g = &wg.graph;
    let n = g.num_vertices();
    let mut active_deg: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
    let mut in_cover = vec![false; n];
    let mut covered = vec![false; n]; // vertex removed from the active graph
    let mut remaining_edges = g.num_edges();
    // Heap of (ratio, vertex, degree-at-push); lazily invalidated.
    let mut heap: BinaryHeap<(Reverse<OrdF64>, VertexId, usize)> = g
        .vertices()
        .filter(|&v| active_deg[v as usize] > 0)
        .map(|v| {
            (
                Reverse(OrdF64(wg.weights[v] / active_deg[v as usize] as f64)),
                v,
                active_deg[v as usize],
            )
        })
        .collect();
    while remaining_edges > 0 {
        let (_, v, deg_at_push) = heap.pop().expect("edges remain, so does a candidate");
        let vu = v as usize;
        if covered[vu] || active_deg[vu] == 0 {
            continue;
        }
        if active_deg[vu] != deg_at_push {
            // Stale entry: re-push with the current ratio.
            heap.push((
                Reverse(OrdF64(wg.weights[v] / active_deg[vu] as f64)),
                v,
                active_deg[vu],
            ));
            continue;
        }
        in_cover[vu] = true;
        covered[vu] = true;
        remaining_edges -= active_deg[vu];
        for &u in g.neighbors(v) {
            let uu = u as usize;
            if !covered[uu] && active_deg[uu] > 0 {
                active_deg[uu] -= 1;
            }
        }
        active_deg[vu] = 0;
    }
    VertexCover::from_membership(in_cover)
}

/// Both endpoints of a greedy maximal matching (edges visited in canonical
/// order): a 2-approximation for the *unweighted* problem.
pub fn matching_cover(wg: &WeightedGraph) -> VertexCover {
    let g = &wg.graph;
    let mut matched = vec![false; g.num_vertices()];
    for e in g.edges() {
        let (u, v) = (e.u() as usize, e.v() as usize);
        if !matched[u] && !matched[v] {
            matched[u] = true;
            matched[v] = true;
        }
    }
    VertexCover::from_membership(matched)
}

/// Total-order wrapper for finite f64 heap keys.
#[derive(PartialEq, PartialOrd)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).expect("finite ratios only")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_mwvc;
    use mwvc_graph::generators::{clique, gnp, path, star};
    use mwvc_graph::{Graph, VertexWeights, WeightModel};

    #[test]
    fn greedy_takes_star_center() {
        let wg = WeightedGraph::unweighted(star(12));
        let c = greedy_ratio_cover(&wg);
        assert_eq!(c.vertices(), &[0]);
    }

    #[test]
    fn greedy_avoids_expensive_center_when_justified() {
        let g = star(4);
        let wg = WeightedGraph::new(g, VertexWeights::from_vec(vec![30.0, 1.0, 1.0, 1.0]));
        let c = greedy_ratio_cover(&wg);
        c.verify(&wg.graph).unwrap();
        // center ratio 30/3 = 10 > leaf ratio 1: leaves win.
        assert_eq!(c.vertices(), &[1, 2, 3]);
    }

    #[test]
    fn greedy_always_covers() {
        for seed in 0..5 {
            let g = gnp(150, 0.05, seed);
            let w = WeightModel::Zipf {
                exponent: 1.1,
                scale: 20.0,
            }
            .sample(&g, seed);
            let wg = WeightedGraph::new(g, w);
            let c = greedy_ratio_cover(&wg);
            c.verify(&wg.graph).unwrap();
        }
    }

    #[test]
    fn greedy_close_to_optimal_on_small_instances() {
        for seed in 0..4 {
            let g = gnp(36, 0.15, seed);
            let w = WeightModel::Uniform { lo: 1.0, hi: 4.0 }.sample(&g, seed);
            let wg = WeightedGraph::new(g, w);
            let c = greedy_ratio_cover(&wg);
            let opt = exact_mwvc(&wg).weight;
            // ln(n)-ish worst case, but on these instances it stays close.
            assert!(c.weight(&wg) <= 2.5 * opt + 1e-9);
        }
    }

    #[test]
    fn matching_cover_is_unweighted_two_approx() {
        for (g, opt) in [(clique(6), 5.0), (path(7), 3.0), (star(9), 1.0)] {
            let wg = WeightedGraph::unweighted(g);
            let c = matching_cover(&wg);
            c.verify(&wg.graph).unwrap();
            assert!(c.size() as f64 <= 2.0 * opt);
        }
    }

    #[test]
    fn matching_cover_has_even_size() {
        let wg = WeightedGraph::unweighted(gnp(100, 0.08, 3));
        let c = matching_cover(&wg);
        c.verify(&wg.graph).unwrap();
        assert_eq!(c.size() % 2, 0, "pairs of matched endpoints");
    }

    #[test]
    fn empty_graphs() {
        let wg = WeightedGraph::unweighted(Graph::empty(5));
        assert_eq!(greedy_ratio_cover(&wg).size(), 0);
        assert_eq!(matching_cover(&wg).size(), 0);
    }
}
