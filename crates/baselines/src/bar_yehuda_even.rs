//! The Bar-Yehuda–Even linear-time 2-approximation (the "pricing" /
//! local-ratio algorithm, `[BYE81]` in the paper's references).
//!
//! Walk the edges once; on edge `(u,v)` raise its dual value by
//! `δ = min(residual(u), residual(v))` and lower both residuals by `δ`;
//! vertices whose residual hits zero join the cover. The dual values form
//! a feasible fractional matching, so the cover — every edge loses one
//! endpoint's residual — weighs at most `2·Σδ ≤ 2·OPT`.
//!
//! This is the sequential classic every parallel algorithm is measured
//! against; it also provides the pricing lower bound used by the exact
//! solver's pruning.

use mwvc_core::{DualCertificate, VertexCover};
use mwvc_graph::{EdgeIndex, WeightedGraph};

/// Result of a Bar-Yehuda–Even run.
#[derive(Debug, Clone)]
pub struct PricingResult {
    /// The 2-approximate cover.
    pub cover: VertexCover,
    /// The dual values per edge (a feasible fractional matching).
    pub certificate: DualCertificate,
}

/// Runs the pricing algorithm, visiting edges in canonical edge-id order.
pub fn bar_yehuda_even(wg: &WeightedGraph) -> PricingResult {
    let eidx = EdgeIndex::build(&wg.graph);
    let n = wg.num_vertices();
    let mut residual: Vec<f64> = wg.weights.iter().collect();
    let mut x = vec![0.0f64; eidx.num_edges()];
    let mut tight = vec![false; n];
    for (eid, e) in eidx.edges().iter().enumerate() {
        let (u, v) = (e.u() as usize, e.v() as usize);
        if tight[u] || tight[v] {
            continue;
        }
        let delta = residual[u].min(residual[v]);
        x[eid] = delta;
        residual[u] -= delta;
        residual[v] -= delta;
        if residual[u] <= 0.0 {
            tight[u] = true;
        }
        if residual[v] <= 0.0 {
            tight[v] = true;
        }
    }
    let cover = VertexCover::from_membership(tight);
    PricingResult {
        cover,
        certificate: DualCertificate::new(x),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_mwvc;
    use mwvc_graph::generators::{gnp, path, star};
    use mwvc_graph::{VertexWeights, WeightModel};

    #[test]
    fn covers_and_two_approximates_small_instances() {
        for seed in 0..6 {
            let g = gnp(48, 0.12, seed);
            let w = WeightModel::Uniform { lo: 1.0, hi: 7.0 }.sample(&g, seed);
            let wg = WeightedGraph::new(g, w);
            let res = bar_yehuda_even(&wg);
            res.cover.verify(&wg.graph).expect("valid cover");
            let opt = exact_mwvc(&wg).weight;
            let weight = res.cover.weight(&wg);
            assert!(
                weight <= 2.0 * opt + 1e-9,
                "seed {seed}: {weight} > 2 * {opt}"
            );
        }
    }

    #[test]
    fn certificate_is_feasible_and_tight_against_cover() {
        let g = gnp(100, 0.07, 9);
        let w = WeightModel::Exponential { mean: 4.0 }.sample(&g, 2);
        let wg = WeightedGraph::new(g, w);
        let eidx = EdgeIndex::build(&wg.graph);
        let res = bar_yehuda_even(&wg);
        assert!(res.certificate.is_feasible(&wg, &eidx, 1e-9));
        // The pricing argument: w(C) <= 2 * dual value.
        assert!(res.cover.weight(&wg) <= 2.0 * res.certificate.value() + 1e-9);
    }

    #[test]
    fn star_with_cheap_center() {
        let g = star(8);
        let mut w = vec![10.0; 8];
        w[0] = 1.0;
        let wg = WeightedGraph::new(g, VertexWeights::from_vec(w));
        let res = bar_yehuda_even(&wg);
        res.cover.verify(&wg.graph).unwrap();
        // First edge drains the center: cover = {center} exactly.
        assert_eq!(res.cover.vertices(), &[0]);
    }

    #[test]
    fn path_alternation() {
        let wg = WeightedGraph::unweighted(path(4));
        let res = bar_yehuda_even(&wg);
        res.cover.verify(&wg.graph).unwrap();
        // Edge (0,1) drains both; edge (1,2) skipped; edge (2,3) drains both.
        assert_eq!(res.cover.vertices(), &[0, 1, 2, 3]);
        assert_eq!(res.certificate.value(), 2.0);
    }

    #[test]
    fn empty_graph() {
        let wg = WeightedGraph::unweighted(mwvc_graph::Graph::empty(3));
        let res = bar_yehuda_even(&wg);
        assert_eq!(res.cover.size(), 0);
        assert_eq!(res.certificate.value(), 0.0);
    }
}
